"""Integer-encoded execution: exactness, backends, memoization, stats.

The encoded evaluators (``array`` and ``numpy`` backends) must be
bit-for-bit exact against the object path on every workload generator
and every execution path (plain, batch, sharded sequential, sharded
parallel); backend resolution must honor ``REPRO_ENCODING`` and degrade
to the pure-python ``array`` backend when numpy is absent; and the new
counters (``encoded_eliminations``, ``encoded_resident_bytes``) must
stay consistent with the semijoin/backtracking attribution.
"""

import pickle

import pytest

from repro.algorithms.fpt_counting import exists_components
from repro.engine import Engine
from repro.engine.context import ExecutionContext
from repro.exceptions import ReproError, SignatureError
from repro.structures import encoding as encoding_module
from repro.structures.encoding import (
    ENCODING_ENV_VAR,
    EncodedStructure,
    numpy_available,
    resolve_backend,
)
from repro.structures.random_gen import random_graph
from repro.workloads.generators import (
    cycle_query,
    example_4_1_query,
    example_4_2_query,
    example_5_21_query,
    grid_query,
    hidden_clique_query,
    path_query,
    random_conjunctive_query,
    random_ucq,
    star_query,
    union_of_paths_query,
)

#: The encoded backends under test ("numpy" included only when present).
ENCODED_BACKENDS = ("array", "numpy") if numpy_available() else ("array",)


def generator_queries():
    """One query from every generator in ``workloads.generators``."""
    yield pytest.param(cycle_query(4), id="cycle")
    yield pytest.param(example_4_1_query(), id="example_4_1")
    yield pytest.param(example_4_2_query(), id="example_4_2")
    yield pytest.param(example_5_21_query(), id="example_5_21")
    yield pytest.param(grid_query(2, 3), id="grid")
    yield pytest.param(hidden_clique_query(3), id="hidden_clique")
    yield pytest.param(path_query(4, quantify_interior=True), id="path")
    yield pytest.param(star_query(3, quantify_leaves=True), id="star")
    yield pytest.param(union_of_paths_query([2, 3]), id="union_of_paths")
    for seed in range(3):
        yield pytest.param(
            random_conjunctive_query(5, 4, liberal_count=2, seed=seed),
            id=f"random_cq_{seed}",
        )
    for seed in range(2):
        yield pytest.param(
            random_ucq(2, 4, 3, liberal_count=2, seed=seed),
            id=f"random_ucq_{seed}",
        )


# ----------------------------------------------------------------------
# Backend resolution
# ----------------------------------------------------------------------
def test_resolve_backend_aliases_and_default():
    assert resolve_backend("object") == "object"
    assert resolve_backend("off") == "object"
    assert resolve_backend("none") == "object"
    assert resolve_backend("") == "object"
    assert resolve_backend("array") == "array"
    assert resolve_backend("Array") == "array"


def test_resolve_backend_rejects_unknown_names():
    with pytest.raises(ReproError):
        resolve_backend("sparse")


def test_resolve_backend_consults_environment(monkeypatch):
    monkeypatch.delenv(ENCODING_ENV_VAR, raising=False)
    assert resolve_backend(None) == "object"
    monkeypatch.setenv(ENCODING_ENV_VAR, "array")
    assert resolve_backend(None) == "array"
    # An explicit request always wins over the environment.
    assert resolve_backend("object") == "object"


def test_engine_picks_up_encoding_from_environment(monkeypatch):
    monkeypatch.setenv(ENCODING_ENV_VAR, "array")
    engine = Engine(processes=1)
    try:
        assert engine.encoding == "array"
        assert engine.contexts.encoding == "array"
        assert engine.pool.encoding == "array"
    finally:
        engine.close()


def _simulate_missing_numpy(monkeypatch):
    def refuse():
        raise ImportError("numpy disabled for this test")

    monkeypatch.setattr(encoding_module, "_import_numpy", refuse)
    monkeypatch.setattr(
        encoding_module, "_numpy_module", encoding_module._UNPROBED
    )


def test_auto_degrades_to_array_without_numpy(monkeypatch):
    _simulate_missing_numpy(monkeypatch)
    assert resolve_backend("auto") == "array"
    with pytest.raises(ReproError):
        resolve_backend("numpy")


def test_auto_prefers_numpy_when_available():
    if not numpy_available():
        pytest.skip("numpy not importable in this interpreter")
    assert resolve_backend("auto") == "numpy"


# ----------------------------------------------------------------------
# EncodedStructure storage
# ----------------------------------------------------------------------
def test_encoded_structure_round_trips_relations():
    structure = random_graph(9, 0.4, seed=5)
    encoded = EncodedStructure(structure)
    assert encoded.size == len(structure.universe)
    assert encoded.decode == tuple(sorted(structure.universe, key=repr))
    decoded = encoded.decode_rows(encoded.relation_rows("E"))
    assert decoded == structure.relation("E")
    # Encoding is the inverse permutation of the decode table.
    assert all(encoded.decode[encoded.encode[e]] == e for e in structure.universe)


def test_encoded_relation_columns_are_row_sorted():
    structure = random_graph(8, 0.5, seed=2)
    rel = EncodedStructure(structure).relations["E"]
    rows = list(rel.iter_rows())
    assert rows == sorted(rows)
    assert rel.row_count == len(structure.relation("E"))
    assert rel.nbytes == 8 * rel.arity * rel.row_count


def test_encoded_structure_unknown_relation_matches_structure_error():
    encoded = EncodedStructure(random_graph(4, 0.5, seed=0))
    with pytest.raises(SignatureError):
        encoded.relation_rows("missing")


def test_encoded_structure_pickles_compactly_and_round_trips():
    structure = random_graph(10, 0.4, seed=3)
    encoded = EncodedStructure(structure)
    encoded.relation_rows("E")  # populate a lazy view
    encoded.int_structure()
    clone = pickle.loads(pickle.dumps(encoded))
    assert clone.decode == encoded.decode
    assert clone.relation_rows("E") == encoded.relation_rows("E")
    assert clone.nbytes == encoded.nbytes
    # The pickled payload ships columnar arrays, not the lazy frozenset
    # views (they rebuild on demand post-unpickle).
    assert clone._tuple_sets == {} or "E" in clone._tuple_sets


# ----------------------------------------------------------------------
# Agreement with the object path, on every generator and every path
# ----------------------------------------------------------------------
@pytest.mark.parametrize("query", generator_queries())
@pytest.mark.parametrize("backend", ENCODED_BACKENDS)
def test_encoded_counts_agree_with_object_path(query, backend):
    structure = random_graph(12, 0.3, seed=17)
    reference = Engine(processes=1)
    encoded = Engine(processes=1, encoding=backend)
    try:
        expected = reference.count(query, structure)
        assert encoded.count(query, structure) == expected
        assert (
            encoded.count_sharded(
                query, structure, shard_count=3, parallel=False
            )
            == expected
        )
    finally:
        reference.close()
        encoded.close()


@pytest.mark.parametrize("backend", ENCODED_BACKENDS)
def test_encoded_count_many_agrees_with_object_path(backend):
    queries = [
        path_query(3, quantify_interior=True),
        star_query(3, quantify_leaves=True),
        union_of_paths_query([2, 2]),
    ]
    structures = [random_graph(10, 0.3, seed=s) for s in (0, 1)]
    reference = Engine(processes=1)
    encoded = Engine(processes=1, encoding=backend)
    try:
        expected = reference.count_many(queries, structures, parallel=False)
        assert (
            encoded.count_many(queries, structures, parallel=False)
            == expected
        )
    finally:
        reference.close()
        encoded.close()


def test_encoded_parallel_sharded_count_agrees():
    query = path_query(4, quantify_interior=True)
    structure = random_graph(14, 0.3, seed=9)
    reference = Engine(processes=1)
    encoded = Engine(processes=2, encoding="array")
    try:
        expected = reference.count(query, structure)
        got = encoded.count_sharded(
            query, structure, shard_count=4, parallel=True
        )
        assert got == expected
    finally:
        reference.close()
        encoded.close()


@pytest.mark.parametrize("query", generator_queries())
def test_array_backend_agrees_without_numpy(query, monkeypatch):
    _simulate_missing_numpy(monkeypatch)
    structure = random_graph(10, 0.3, seed=23)
    reference = Engine(processes=1)
    encoded = Engine(processes=1, encoding="auto")
    try:
        assert encoded.encoding == "array"
        assert encoded.count(query, structure) == reference.count(
            query, structure
        )
    finally:
        reference.close()
        encoded.close()


def test_boundary_relations_agree_per_component():
    structure = random_graph(9, 0.35, seed=4)
    queries = [
        path_query(4, quantify_interior=True),
        star_query(3, quantify_leaves=True),
        hidden_clique_query(3),
    ]
    for backend in ENCODED_BACKENDS:
        for query in queries:
            for component in exists_components(query):
                plain = ExecutionContext(structure)
                encoded = ExecutionContext(structure, encoding=backend)
                assert encoded.boundary_relation(
                    component
                ) == plain.boundary_relation(component)


# ----------------------------------------------------------------------
# Stats attribution and resident bytes
# ----------------------------------------------------------------------
@pytest.mark.parametrize("backend", ENCODED_BACKENDS)
def test_encoded_eliminations_attribution(backend):
    structure = random_graph(10, 0.35, seed=6)
    queries = [
        path_query(4, quantify_interior=True),
        hidden_clique_query(3),  # cyclic interior: backtracking fallback
    ]
    engine = Engine(processes=1, encoding=backend)
    try:
        for query in queries:
            engine.count(query, structure)
        stats = engine.stats()
        assert stats.encoded_eliminations > 0
        # Every encoded elimination is still attributed to exactly one
        # of the underlying evaluators.
        assert stats.encoded_eliminations == (
            stats.semijoin_eliminations + stats.backtracking_eliminations
        )
        assert stats.backtracking_eliminations > 0  # the clique interior
        assert stats.encoded_resident_bytes > 0
    finally:
        engine.close()


def test_object_path_reports_no_encoded_eliminations():
    structure = random_graph(10, 0.35, seed=6)
    engine = Engine(processes=1)
    try:
        engine.count(path_query(4, quantify_interior=True), structure)
        stats = engine.stats()
        assert stats.encoded_eliminations == 0
        assert stats.encoded_resident_bytes == 0
        assert stats.semijoin_eliminations > 0
    finally:
        engine.close()


# ----------------------------------------------------------------------
# Base-table memoization
# ----------------------------------------------------------------------
def test_base_tables_are_memoized_per_relation_and_scope(monkeypatch):
    from repro.engine import context as context_module

    calls = []
    original = context_module._base_table

    def counting_base_table(index, name, scope):
        calls.append((name, scope))
        return original(index, name, scope)

    monkeypatch.setattr(context_module, "_base_table", counting_base_table)
    structure = random_graph(9, 0.4, seed=8)
    query = path_query(4, quantify_interior=True)
    context = ExecutionContext(structure, memoize=False)
    (component,) = exists_components(query)
    context.boundary_relation(component)
    first = len(calls)
    assert first > 0
    # Even with the boundary-relation memo off, re-eliminating the same
    # component re-reads its base tables from the per-context memo.
    context.boundary_relation(component)
    assert len(calls) == first


@pytest.mark.parametrize("backend", ("object",) + ENCODED_BACKENDS)
def test_randomized_deltas_agree_with_full_reregistration(backend):
    """Randomized live-update agreement on every backend: after each
    random delta, counting the registered name (incremental contexts,
    chained fingerprints) must equal counting a freshly re-registered
    copy of the same post-delta data."""
    import random as random_module

    from repro.structures.delta import StructureDelta
    from repro.structures.structure import Structure

    out_query = "exists z. (E(x, z) & E(z, y))"
    rng = random_module.Random(20260808)
    for seed in range(3):
        base = random_graph(12, 0.3, seed=seed)
        live = Engine(processes=1, encoding=backend)
        fresh = Engine(processes=1, encoding=backend)
        try:
            live.register_structure("g", base, pin=False, shard_count=2)
            current = base
            for round_ in range(4):
                edges = sorted(current.relations["E"], key=repr)
                deletes = rng.sample(edges, k=min(2, len(edges)))
                inserts = []
                existing = set(edges)
                while len(inserts) < 3:
                    a = rng.randrange(12)
                    b = rng.randrange(12)
                    candidate = (a, b)
                    if candidate not in existing and candidate not in deletes:
                        existing.add(candidate)
                        inserts.append(candidate)
                delta = StructureDelta(
                    inserts={"E": inserts}, deletes={"E": deletes}
                )
                entry = live.apply_delta("g", delta)
                current = entry.structure
                rebuilt = Structure.from_relations(
                    {"E": sorted(current.relations["E"], key=repr)},
                    universe=sorted(current.universe, key=repr),
                )
                fresh.register_structure("r", rebuilt, pin=False, shard_count=2)
                expected = fresh.count(out_query, "r")
                assert live.count(out_query, "g") == expected
                assert (
                    live.count_sharded(out_query, "g", parallel=False)
                    == expected
                )
        finally:
            live.close()
            fresh.close()
