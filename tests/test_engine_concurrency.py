"""Concurrent engine use: stats coherence and lifecycle hygiene.

The serving layer hammers one :class:`Engine` from many threads while
scraping ``stats()`` and occasionally zeroing them; these tests pin the
behaviors that makes that safe -- locked counter snapshots, no lost
updates -- plus the lifecycle regression that swapping the default
engine must not leak the previous engine's worker processes.
"""

from __future__ import annotations

import multiprocessing
import threading

from repro.core.counting import count_answers, count_answers_sharded
from repro.engine.api import (
    Engine,
    default_engine,
    reset_default_engine,
    set_default_engine,
)
from repro.engine.context import ContextStats
from repro.engine.pool import WorkerPool
from repro.structures.random_gen import random_graph
from repro.structures.structure import Structure

PATH_QUERY = "exists z. (E(x, z) & E(z, y))"


def two_component_graph() -> Structure:
    """Two disjoint paths, so sharding produces two real shard jobs."""
    return Structure.from_relations(
        {
            "E": [(i, i + 1) for i in range(10)]
            + [(i + 100, i + 101) for i in range(10)]
        }
    )


def test_concurrent_counts_while_stats_and_resets_run():
    """N threads mixing count/count_many/count_sharded against one
    engine, racing a stats-scraper and a stats-resetter: every count
    stays correct and no reader ever crashes or sees torn state."""
    engine = Engine()
    structures = [random_graph(5, 0.4, seed=seed) for seed in range(3)]
    expected = [
        count_answers(PATH_QUERY, structure, engine=None)
        for structure in structures
    ]
    errors: list[BaseException] = []
    stop = threading.Event()

    def hammer(worker: int) -> None:
        try:
            for round_ in range(8):
                structure = structures[(worker + round_) % len(structures)]
                want = expected[(worker + round_) % len(structures)]
                assert engine.count(PATH_QUERY, structure) == want
                assert (
                    engine.count_sharded(
                        PATH_QUERY, structure, shard_count=2, parallel=False
                    )
                    == want
                )
                grid = engine.count_many(
                    [PATH_QUERY], structures, parallel=False
                )
                assert grid == [expected]
        except BaseException as exc:  # pragma: no cover - failure path
            errors.append(exc)

    def scrape() -> None:
        try:
            while not stop.is_set():
                stats = engine.stats()
                assert stats.plan_hits >= 0 and stats.plan_misses >= 0
                assert stats.context_hits >= 0
                stats.as_dict()  # must always serialize
        except BaseException as exc:  # pragma: no cover - failure path
            errors.append(exc)

    def reset() -> None:
        try:
            while not stop.is_set():
                engine.reset_stats()
        except BaseException as exc:  # pragma: no cover - failure path
            errors.append(exc)

    workers = [
        threading.Thread(target=hammer, args=(index,)) for index in range(4)
    ]
    observers = [
        threading.Thread(target=scrape),
        threading.Thread(target=reset),
    ]
    for thread in workers + observers:
        thread.start()
    for thread in workers:
        thread.join()
    stop.set()
    for thread in observers:
        thread.join()
    assert not errors


def test_context_stats_bump_has_no_lost_updates():
    """The shared ContextStats sink is a locked read-modify-write: 8
    threads x 2000 increments land exactly, where a bare ``+=`` loses
    updates under preemption."""
    stats = ContextStats()

    def bump() -> None:
        for _ in range(2000):
            stats.bump("boundary_hits")

    threads = [threading.Thread(target=bump) for _ in range(8)]
    for thread in threads:
        thread.start()
    for thread in threads:
        thread.join()
    assert stats.snapshot().boundary_hits == 8 * 2000


def test_worker_pool_stats_snapshot_and_reset():
    pool = WorkerPool(processes=1)
    pool.worker_context_hits = 5
    pool.worker_context_misses = 2
    assert pool.stats_snapshot() == (5, 2)
    pool.reset_stats()
    assert pool.stats_snapshot() == (0, 0)
    pool.close()


def test_swapping_default_engine_leaves_no_children():
    """The lifecycle regression: replacing the default engine must shut
    the previous engine's worker pool down instead of stranding its
    forked children behind a ``__del__`` safety net."""
    children_before = set(multiprocessing.active_children())
    graph = two_component_graph()
    first = Engine(processes=2)
    set_default_engine(first)
    try:
        # Start the first engine's pool for real (two shard jobs).
        count_answers_sharded(PATH_QUERY, graph, shard_count=2, parallel=True)
        assert first.pool.started

        second = Engine(processes=2)
        set_default_engine(second)
        # The swap closed (and joined) the previous pool.
        assert not first.pool.started
        assert default_engine() is second

        second.count_sharded(PATH_QUERY, graph, shard_count=2, parallel=True)
        assert second.pool.started
    finally:
        reset_default_engine(close=True)
    assert not set(multiprocessing.active_children()) - children_before


def test_reset_default_engine_close_false_keeps_pool():
    engine = Engine(processes=2)
    set_default_engine(engine)
    engine.count_sharded(
        PATH_QUERY, two_component_graph(), shard_count=2, parallel=True
    )
    assert engine.pool.started
    reset_default_engine(close=False)
    try:
        assert engine.pool.started  # still ours to manage
    finally:
        engine.close()
    assert not engine.pool.started


def test_transient_sharded_engine_leaves_no_children():
    """``count_answers_sharded(engine=None)`` builds a throwaway engine;
    its pool must be torn down before the call returns."""
    children_before = set(multiprocessing.active_children())
    graph = two_component_graph()
    result = count_answers_sharded(
        PATH_QUERY, graph, shard_count=2, parallel=True, engine=None
    )
    assert result == count_answers(PATH_QUERY, graph, engine=None)
    assert not set(multiprocessing.active_children()) - children_before


def test_counts_racing_deltas_observe_whole_versions_only():
    """Readers hammering a registered name while a writer applies
    deltas: every observed count must belong to exactly one version
    (pre- or post-delta), never a torn mix.

    The workload is built so whole versions have even counts (each
    delta deletes one edge and inserts three disjoint new ones, a net
    +2 to "x has an out-edge") -- any partially-applied state would
    surface as an odd count.
    """
    from repro.structures.delta import StructureDelta

    out_query = "exists y. E(x, y)"
    edges = [(i, i + 1) for i in range(0, 40, 2)]  # 20 disjoint edges
    base = Structure.from_relations({"E": edges})
    rounds = 5
    valid_counts = {20 + 2 * k for k in range(rounds + 1)}
    errors: list[BaseException] = []
    done = threading.Event()

    with Engine() as engine:
        engine.register_structure("live", base, pin=False, shard_count=2)

        def read() -> None:
            try:
                while not done.is_set():
                    count = engine.count(out_query, "live")
                    assert count in valid_counts, f"torn count {count}"
                    count = engine.count_sharded(
                        out_query, "live", parallel=False
                    )
                    assert count in valid_counts, f"torn sharded {count}"
            except BaseException as exc:  # pragma: no cover - surfaced below
                errors.append(exc)

        readers = [threading.Thread(target=read) for _ in range(4)]
        for thread in readers:
            thread.start()
        try:
            for k in range(rounds):
                delta = StructureDelta(
                    inserts={
                        "E": [
                            (1000 + 10 * k + j, 2000 + 10 * k + j)
                            for j in range(3)
                        ]
                    },
                    deletes={"E": [(2 * k, 2 * k + 1)]},
                )
                entry = engine.apply_delta("live", delta, expect_version=k + 1)
                assert entry.version == k + 2
        finally:
            done.set()
            for thread in readers:
                thread.join(timeout=60)
        assert not errors, errors
        final = engine.count(out_query, "live")
        assert final == 20 + 2 * rounds
