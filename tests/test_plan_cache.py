"""Plan-cache behavior: keys, hits, invalidation, eviction, single-flight."""

import threading

import pytest

from repro.engine import Engine
from repro.engine.cache import LRUCache, PlanCache, canonical_query_form
from repro.exceptions import ReproError
from repro.logic.ep import EPFormula
from repro.logic.parser import parse_query
from repro.structures.random_gen import random_graph
from repro.workloads.generators import path_query, random_ucq


def test_lru_cache_eviction_order():
    cache = LRUCache(2)
    cache.get_or_compute("a", lambda: 1)
    cache.get_or_compute("b", lambda: 2)
    cache.get_or_compute("a", lambda: 0)  # refresh a
    cache.get_or_compute("c", lambda: 3)  # evicts b
    assert "a" in cache and "c" in cache and "b" not in cache
    assert cache.hits == 1 and cache.misses == 3


def test_lru_cache_rejects_zero_capacity():
    with pytest.raises(ReproError):
        LRUCache(0)


def test_concurrent_misses_compute_once():
    """Single-flight: N racing threads on one absent key -> one compute.

    The barrier lines every thread up before the lookup, the event
    keeps the leader's compute slow enough that every follower arrives
    while it is in flight; exactly one compilation must run and the
    miss counter must say so.
    """
    cache = LRUCache(4)
    threads = 8
    barrier = threading.Barrier(threads)
    release = threading.Event()
    computed = []

    def compute():
        computed.append(1)
        release.wait(timeout=5)
        return "value"

    results = [None] * threads

    def worker(i):
        barrier.wait(timeout=5)
        results[i] = cache.get_or_compute("key", compute)

    pool = [threading.Thread(target=worker, args=(i,)) for i in range(threads)]
    for t in pool:
        t.start()
    # All threads are either computing or waiting on the flight now.
    release.set()
    for t in pool:
        t.join(timeout=10)
    assert results == ["value"] * threads
    assert len(computed) == 1
    assert cache.misses == 1
    assert cache.hits == threads - 1


def test_single_flight_propagates_leader_error_then_recovers():
    cache = LRUCache(4)

    def explode():
        raise ValueError("compile failed")

    with pytest.raises(ValueError):
        cache.get_or_compute("key", explode)
    # The failed flight is cleaned up: the next call computes fresh.
    assert cache.get_or_compute("key", lambda: 42) == 42
    assert cache.misses == 2


def test_single_flight_does_not_overfill_capacity():
    cache = LRUCache(2)
    for i in range(10):
        cache.get_or_compute(i, lambda i=i: i)
    assert len(cache) == 2


def test_canonical_form_unifies_call_styles():
    pp = path_query(2, quantify_interior=True)
    as_text = "exists x1. (E(x0, x1) & E(x1, x2))"
    assert canonical_query_form(pp) == canonical_query_form(EPFormula.from_pp(pp))
    assert canonical_query_form(pp) == canonical_query_form(parse_query(as_text))


def test_plan_cache_hits_across_call_styles():
    cache = PlanCache(capacity=8)
    pp = path_query(2, quantify_interior=True)
    cache.get(pp, "auto", 16)
    cache.get(EPFormula.from_pp(pp), "auto", 16)
    assert cache.hits == 1 and cache.misses == 1


def test_distinct_strategies_compile_distinct_plans():
    cache = PlanCache(capacity=8)
    plan_auto = cache.get("E(x, y)", "auto", 16)
    plan_naive = cache.get("E(x, y)", "naive", 16)
    assert plan_auto.kind == "pp-fpt"
    assert plan_naive.kind == "naive"
    assert cache.misses == 2


def test_plan_cache_eviction_recompiles():
    engine = Engine(plan_cache_size=2)
    structure = random_graph(4, 0.5, seed=0)
    queries = ["E(x, y)", "E(y, x)", "exists z. (E(x, z) & E(z, y))"]
    for query in queries:
        engine.count(query, structure)
    # The first query was evicted by the third; counting it again misses.
    engine.count(queries[0], structure)
    assert engine.stats().plan_misses == 4
    assert engine.stats().plan_hits == 0


def test_clear_caches_invalidates_plans():
    engine = Engine()
    structure = random_graph(4, 0.5, seed=1)
    engine.count("E(x, y)", structure)
    engine.clear_caches()
    engine.count("E(x, y)", structure)
    stats = engine.stats()
    assert stats.plan_misses == 2 and stats.plan_hits == 0
    engine.reset_stats()
    assert engine.stats().plan_misses == 0


def test_cached_plans_return_identical_counts_after_eviction():
    engine = Engine(plan_cache_size=1)
    structure = random_graph(5, 0.4, seed=2)
    query = random_ucq(2, 4, 3, liberal_count=2, seed=5)
    first = engine.count(query, structure)
    engine.count("E(x, y)", structure)  # evicts the UCQ plan
    second = engine.count(query, structure)  # recompiled
    assert first == second


def test_parse_cache_memoizes_query_text():
    cache = PlanCache(capacity=8)
    first = cache.resolve("E(x, y)")
    second = cache.resolve("E(x, y)")
    assert first is second
