"""Cross-strategy agreement on randomized workloads.

Every counting strategy implements the same semantics; on any input they
must agree.  The naive enumerator is the ground truth (it follows the
definition directly), so agreement across seeds is the library's main
correctness net.
"""

import pytest

from repro.core.counting import count_answers, count_answers_all_strategies
from repro.exceptions import ReproError
from repro.structures.random_gen import random_graph
from repro.structures.structure import Structure
from repro.workloads.generators import (
    example_4_2_query,
    example_5_21_query,
    hidden_clique_query,
    path_query,
    random_conjunctive_query,
    random_ucq,
    star_query,
    union_of_paths_query,
)


@pytest.mark.parametrize("seed", range(8))
def test_random_conjunctive_queries_agree(seed):
    query = random_conjunctive_query(4, 3, liberal_count=2, seed=seed)
    structure = random_graph(5, 0.4, seed=seed + 100)
    results = count_answers_all_strategies(query, structure)
    assert len(set(results.values())) == 1, results


@pytest.mark.parametrize("seed", range(6))
def test_random_ucqs_agree(seed):
    query = random_ucq(3, 4, 3, liberal_count=2, seed=seed)
    structure = random_graph(5, 0.4, seed=seed + 200)
    results = count_answers_all_strategies(query, structure)
    assert len(set(results.values())) == 1, results


@pytest.mark.parametrize(
    "query",
    [
        path_query(3, quantify_interior=True),
        star_query(3, quantify_leaves=True),
        union_of_paths_query([1, 2, 3]),
        example_4_2_query(),
        example_5_21_query(),
        hidden_clique_query(3),
    ],
    ids=["path", "star", "union-paths", "ex-4.2", "ex-5.21", "hidden-clique"],
)
@pytest.mark.parametrize("seed", [0, 1])
def test_named_families_agree(query, seed):
    structure = random_graph(6, 0.35, seed=seed)
    results = count_answers_all_strategies(query, structure)
    assert len(set(results.values())) == 1, results


def test_empty_structure():
    empty = Structure.from_relations({}, universe=[])
    query = path_query(2, quantify_interior=True)
    ep_query = random_ucq(2, 3, 2, seed=0)
    for q in (query, ep_query):
        results = count_answers_all_strategies(q, empty.with_signature(q.signature))
        assert set(results.values()) == {0}, results


def test_unknown_strategy_raises():
    structure = random_graph(3, 0.5, seed=0)
    with pytest.raises(ReproError):
        count_answers("E(x, y)", structure, strategy="bogus")


def test_fpt_strategy_rejects_unions():
    structure = random_graph(3, 0.5, seed=0)
    union = random_ucq(2, 3, 2, seed=1)
    with pytest.raises(ReproError):
        count_answers(union, structure, strategy="fpt")
