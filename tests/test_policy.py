"""Classification-driven routing: profiles, policies, budgets, /classify.

Covers the acceptance surface of the routing layer: classification
happens exactly once per cached plan (zero on hits), policies resolve
per request and override the engine default, ``reject`` refuses hard
queries at plan time with the verdict attached, budgets abort
cooperatively — including inside pool workers — ``degrade`` falls back
to the profile estimator, the ``/classify`` dry run and the 422/504
wire forms, and the regression the budgets exist for: a
deadline-exceeded request under a budget policy stops consuming its
worker thread instead of lingering as ``abandoned``.
"""

from __future__ import annotations

import json
import pickle
import time
import urllib.error
import urllib.request

import pytest

from repro import (
    BudgetExceeded,
    CostBudget,
    PolicyRejection,
    ReproError,
    classify,
)
from repro.core.classification import Case
from repro.engine.api import Engine
from repro.engine.policy import ALLOW, ExecutionPolicy
from repro.exceptions import WorkloadError
from repro.serve import (
    BackgroundServer,
    CountingServer,
    CountingService,
    ServiceConfig,
)
from repro.structures.random_gen import random_graph
from repro.workloads import clique_query, frontier_family, frontier_query_pair

TRACTABLE, HARD = frontier_query_pair(4)
PATH_QUERY = "exists z. (E(x, z) & E(z, y))"


def graph(size: int = 12, p: float = 0.4, seed: int = 3):
    return random_graph(size, p, seed=seed)


# ----------------------------------------------------------------------
# Plan profiles and classification accounting
# ----------------------------------------------------------------------
def test_classification_once_per_cached_plan():
    engine = Engine()
    g = graph()
    for _ in range(3):
        engine.count(PATH_QUERY, g)
    stats = engine.stats()
    assert stats.classifications == 1
    assert stats.verdicts == {"FPT": 1}
    # A later compile is a cache hit: the memoized profile is reused
    # and nothing is re-counted.
    profile = engine.compile(PATH_QUERY).profile
    assert profile is not None
    assert profile.case is Case.FPT
    assert engine.stats().classifications == 1


def test_profile_round_trips_through_plan_store(tmp_path):
    warm = Engine(persistent_cache_dir=str(tmp_path))
    original = warm.compile(str(TRACTABLE)).profile
    assert original is not None

    cold = Engine(persistent_cache_dir=str(tmp_path))
    loaded = cold.compile(str(TRACTABLE)).profile
    assert cold.stats().persist_hits == 1
    # classify_seconds is compare=False, so equality means the verdict
    # and every measure survived the disk round trip.
    assert loaded == original


def test_frontier_pairs_straddle_the_trichotomy():
    tractable, hard = frontier_query_pair(4)
    assert classify(tractable).case is Case.FPT
    assert classify(hard).case is Case.SHARP_CLIQUE_HARD
    # Same arity on both sides: the pair differs only in atom structure.
    assert tractable.free_variables == hard.free_variables
    # Below the bound the clique side is still tractable.
    assert classify(clique_query(3)).case is Case.FPT
    assert len(frontier_family([4, 5])) == 2
    with pytest.raises(WorkloadError):
        frontier_query_pair(1)
    with pytest.raises(WorkloadError):
        frontier_family([])


# ----------------------------------------------------------------------
# Policy resolution and admission
# ----------------------------------------------------------------------
def test_policy_from_request_validation():
    assert ExecutionPolicy.from_request("reject").mode == "reject"
    policy = ExecutionPolicy.from_request({"mode": "budget", "max_steps": 50})
    assert policy.make_budget().max_steps == 50
    assert ExecutionPolicy.from_request(policy) is policy
    assert ALLOW.make_budget() is None
    with pytest.raises(ReproError):
        ExecutionPolicy.from_request("bogus")
    with pytest.raises(ReproError):
        ExecutionPolicy.from_request({"mode": "budget", "max_steps": -1})
    with pytest.raises(ReproError):
        ExecutionPolicy.from_request({"mode": "allow", "unknown_field": 1})
    with pytest.raises(ReproError):
        ExecutionPolicy.from_request({"mode": "reject", "reject_cases": ["NOPE"]})


def test_reject_policy_refuses_hard_query_at_plan_time():
    engine = Engine(policy="reject")
    g = graph(30, 0.5, seed=1)
    with pytest.raises(PolicyRejection) as excinfo:
        engine.count(str(HARD), g)
    assert excinfo.value.verdict == "SHARP_CLIQUE_HARD"
    assert excinfo.value.measures["contract_treewidth"] == 3
    assert excinfo.value.policy == "reject"
    stats = engine.stats()
    assert stats.policy_rejections == 1
    assert stats.count_calls == 0  # refused before any execution
    # The matched tractable twin sails through the same policy.
    assert engine.count(str(TRACTABLE), g) >= 0


def test_per_request_policy_overrides_engine_default():
    g = graph(8, 0.5, seed=5)
    permissive = Engine()
    with pytest.raises(PolicyRejection):
        permissive.count(str(HARD), g, policy="reject")
    strict = Engine(policy="reject")
    # The override relaxes as well as tightens.
    assert strict.count(str(HARD), g, policy="allow") >= 0
    assert strict.stats().policy_rejections == 0


# ----------------------------------------------------------------------
# Cooperative budgets
# ----------------------------------------------------------------------
def test_budget_abort_raises_with_progress():
    engine = Engine(policy={"mode": "budget", "max_steps": 5})
    with pytest.raises(BudgetExceeded) as excinfo:
        engine.count(PATH_QUERY, graph())
    assert excinfo.value.progress["steps"] > 5
    assert excinfo.value.progress["max_steps"] == 5
    assert engine.stats().budget_aborts == 1


def test_degrade_returns_profile_estimate():
    g = graph(10, 0.5, seed=5)
    exact = Engine().count(str(TRACTABLE), g)
    cold = Engine()
    degraded = cold.count(
        str(TRACTABLE), g, policy={"mode": "degrade", "max_steps": 1}
    )
    # The estimator contract: the trivial upper bound n^arity, which by
    # construction dominates the exact count.
    assert degraded == len(g.universe) ** 4
    assert degraded >= exact
    assert cold.stats().budget_aborts == 1


def test_budget_abort_inside_pool_workers():
    engine = Engine(processes=1)
    try:
        with pytest.raises(BudgetExceeded):
            engine.count_sharded(
                PATH_QUERY,
                graph(20, 0.4, seed=9),
                shard_count=2,
                parallel=True,
                policy={"mode": "budget", "max_steps": 5},
            )
        assert engine.stats().budget_aborts == 1
    finally:
        engine.close()


def test_cost_budget_ships_remaining_allowance_across_pickle():
    budget = CostBudget(max_steps=100, max_seconds=30.0).start()
    budget.charge(40)
    shipped = pickle.loads(pickle.dumps(budget))
    assert shipped.max_steps == 60
    assert shipped.steps == 0
    assert shipped.max_seconds is not None and shipped.max_seconds <= 30.0


def test_budget_validation_is_a_bad_request_not_an_abort():
    with pytest.raises(ReproError) as excinfo:
        CostBudget(max_steps=0)
    assert not isinstance(excinfo.value, BudgetExceeded)


# ----------------------------------------------------------------------
# engine.classify and the HTTP surface
# ----------------------------------------------------------------------
def test_engine_classify_reuses_the_plan_cache():
    engine = Engine()
    profile = engine.classify(str(HARD))
    assert profile.case is Case.SHARP_CLIQUE_HARD
    assert profile.case_for(4) is Case.FPT  # re-derived, not recomputed
    assert engine.stats().classifications == 1
    engine.classify(str(HARD))
    assert engine.stats().classifications == 1


def _post(base: str, path: str, payload: dict, timeout: float = 30.0) -> dict:
    request = urllib.request.Request(
        f"{base}{path}",
        data=json.dumps(payload).encode(),
        headers={"Content-Type": "application/json"},
    )
    with urllib.request.urlopen(request, timeout=timeout) as response:
        return json.load(response)


def _get(base: str, path: str, timeout: float = 30.0) -> dict:
    with urllib.request.urlopen(f"{base}{path}", timeout=timeout) as response:
        return json.load(response)


def test_http_classify_and_policy_routing():
    server = CountingServer(service=CountingService(), port=0)
    with BackgroundServer(server) as background:
        host, port = background.server.address
        base = f"http://{host}:{port}"

        # The dry run: both sides of the frontier, no structure shipped.
        verdict = _post(
            base, "/classify", {"query": str(TRACTABLE), "policy": "reject"}
        )
        assert verdict["verdict"] == "FPT"
        assert verdict["admitted"] is True
        assert verdict["profile"]["contract_treewidth"] == 1
        refused = _post(
            base, "/classify", {"query": str(HARD), "policy": "reject"}
        )
        assert refused["verdict"] == "SHARP_CLIQUE_HARD"
        assert refused["admitted"] is False  # still 200: classify never 422s
        assert refused["policy"]["mode"] == "reject"

        # The same hard query through /count with the same policy: 422
        # with the verdict and measures in the body.
        graph_json = {
            "E": [[i, j] for i in range(6) for j in range(6) if i != j]
        }
        with pytest.raises(urllib.error.HTTPError) as excinfo:
            _post(
                base,
                "/count",
                {
                    "query": str(HARD),
                    "structure": {"relations": graph_json},
                    "policy": "reject",
                },
            )
        assert excinfo.value.code == 422
        body = json.load(excinfo.value)
        assert body["verdict"] == "SHARP_CLIQUE_HARD"
        assert body["measures"]["contract_treewidth"] == 3
        assert body["policy"] == "reject"

        # A tripped step budget surfaces as 504 with progress stats.
        with pytest.raises(urllib.error.HTTPError) as excinfo:
            _post(
                base,
                "/count",
                {
                    "query": str(TRACTABLE),
                    "structure": {"relations": graph_json},
                    "policy": {"mode": "budget", "max_steps": 5},
                },
            )
        assert excinfo.value.code == 504
        body = json.load(excinfo.value)
        assert body["progress"]["steps"] > 5

        # Malformed policies are the client's fault, not a 500.
        with pytest.raises(urllib.error.HTTPError) as excinfo:
            _post(
                base,
                "/count",
                {
                    "query": PATH_QUERY,
                    "structure": {"relations": graph_json},
                    "policy": ["not", "a", "policy"],
                },
            )
        assert excinfo.value.code == 400

        # The verdict counters reach /metrics in both renderings.
        engine_stats = _get(base, "/metrics")["engine"]
        assert engine_stats["classifications"] >= 2
        assert engine_stats["verdicts"]["SHARP_CLIQUE_HARD"] >= 1
        assert engine_stats["policy_rejections"] >= 1
        assert engine_stats["budget_aborts"] >= 1
        scrape = urllib.request.urlopen(
            f"{base}/metrics?format=prometheus", timeout=30
        ).read().decode()
        assert 'repro_plan_verdicts_total{verdict="SHARP_CLIQUE_HARD"}' in scrape
        assert "repro_engine_policy_rejections_total" in scrape


def test_deadline_budget_stops_worker_and_drains_abandoned():
    """The regression budgets exist for: a timed-out request under a
    budget policy aborts *inside* the engine around the deadline, so
    the service's ``abandoned`` gauge drains instead of a worker thread
    grinding on for the query's natural (here: effectively unbounded)
    runtime."""
    config = ServiceConfig(
        max_in_flight=1, max_queue=0, request_timeout_seconds=0.4
    )
    server = CountingServer(
        service=CountingService(
            engine=Engine(), config=config, owns_engine=True
        ),
        port=0,
    )
    # A 5-clique on a 60-node graph: bag-width-5 DP over a 60-element
    # domain, far beyond anything a 0.4s deadline could finish.
    monster = clique_query(5)
    g = random_graph(60, 0.5, seed=11)
    edges = [[a, b] for a, b in g.relations["E"]]
    with BackgroundServer(server) as background:
        host, port = background.server.address
        base = f"http://{host}:{port}"
        started = time.monotonic()
        with pytest.raises(urllib.error.HTTPError) as excinfo:
            _post(
                base,
                "/count",
                {
                    "query": str(monster),
                    "structure": {"relations": {"E": edges}},
                    "policy": {"mode": "budget"},
                },
                timeout=30,
            )
        assert excinfo.value.code == 504
        # The budget's max_seconds was capped at the request deadline,
        # so the executor thread must release its slot shortly after
        # the 504 -- not after the count finishes naturally.
        deadline = time.monotonic() + 8.0
        while time.monotonic() < deadline:
            health = _get(base, "/healthz")
            if health["executing"] == 0 and health["abandoned"] == 0:
                break
            time.sleep(0.05)
        else:
            pytest.fail(
                "budgeted execution kept its worker thread after the 504"
            )
        assert time.monotonic() - started < 10.0
