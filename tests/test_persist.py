"""The on-disk plan store: warm starts, versioning, corruption tolerance.

A persisted plan must round-trip into a *fresh* engine (write, new
``Engine`` on the same directory, hit without recompiling); a bumped
library version or a corrupted file must be a clean miss, never an
error; writes must be atomic (no ``.tmp`` debris, no half files).
"""

import os
import pickle

import pytest

from repro.engine import Engine, PlanStore, compile_plan
from repro.engine.cache import plan_key
from repro.engine.persist import PLAN_FILE_SUFFIX, key_digest
from repro.exceptions import ReproError
from repro.structures.random_gen import random_graph
from repro.workloads.generators import example_5_21_query, union_of_paths_query

QUERY = "exists z. (E(x, z) & E(z, y))"


def test_store_round_trips_a_plan(tmp_path):
    store = PlanStore(tmp_path)
    plan = compile_plan(QUERY)
    key = plan_key(plan.query, "auto", 40)
    assert store.load(key) is None  # cold miss
    store.save(key, plan)
    reloaded = PlanStore(tmp_path).load(key)
    assert reloaded is not None
    assert reloaded.kind == plan.kind
    assert reloaded.query == plan.query
    assert store.misses == 1 and store.stores == 1


def test_engine_round_trip_write_new_engine_hit(tmp_path):
    structure = random_graph(5, 0.4, seed=1)
    first = Engine(persistent_cache_dir=str(tmp_path))
    count = first.count(QUERY, structure)
    assert first.stats().persist_stores == 1
    assert len(first.store) == 1

    # A genuinely fresh process stand-in: new engine, cold memory cache.
    second = Engine(persistent_cache_dir=str(tmp_path))
    assert second.count(QUERY, structure) == count
    stats = second.stats()
    assert stats.persist_hits == 1
    assert stats.persist_stores == 0  # loaded, not recompiled-and-rewritten


def test_warm_from_disk_and_flush_to_disk(tmp_path):
    structure = random_graph(5, 0.4, seed=2)
    writer = Engine(persistent_cache_dir=str(tmp_path))
    queries = [QUERY, "E(x, y)", union_of_paths_query([1, 2])]
    for query in queries:
        writer.count(query, structure)
    assert writer.flush_to_disk() == len(queries)

    reader = Engine(persistent_cache_dir=str(tmp_path))
    assert reader.warm_from_disk() == len(queries)
    for query in queries:
        assert reader.count(query, structure) == writer.count(query, structure)
    # Every query was served from the warmed in-memory cache.
    assert reader.stats().plan_misses == 0
    assert reader.stats().plan_hits >= len(queries)


def test_warm_and_flush_require_a_store():
    engine = Engine()
    with pytest.raises(ReproError):
        engine.warm_from_disk()
    with pytest.raises(ReproError):
        engine.flush_to_disk()


def test_version_bump_is_a_clean_miss(tmp_path):
    plan = compile_plan(QUERY)
    key = plan_key(plan.query, "auto", 40)
    PlanStore(tmp_path, version="1.0.0").save(key, plan)
    bumped = PlanStore(tmp_path, version="2.0.0")
    assert bumped.load(key) is None
    assert len(bumped) == 0
    assert bumped.misses == 1


def test_corrupted_file_is_a_clean_miss(tmp_path):
    store = PlanStore(tmp_path)
    plan = compile_plan(QUERY)
    key = plan_key(plan.query, "auto", 40)
    store.save(key, plan)
    (path,) = list(store._version_dir.glob(f"*{PLAN_FILE_SUFFIX}"))

    path.write_bytes(b"\x00not a pickle")
    assert PlanStore(tmp_path).load(key) is None

    # A truncated pickle (simulating a torn write) is also a miss.
    path.write_bytes(pickle.dumps((key, plan))[:20])
    assert PlanStore(tmp_path).load(key) is None

    # And warming skips the rotten file instead of raising.
    assert list(PlanStore(tmp_path).load_all()) == []


def test_key_mismatch_is_a_miss(tmp_path):
    # Simulate a digest collision: the file exists but holds a plan for
    # a different key.  The stored key is verified, so this is a miss.
    store = PlanStore(tmp_path)
    plan = compile_plan(QUERY)
    key = plan_key(plan.query, "auto", 40)
    other_key = plan_key(compile_plan("E(x, y)").query, "auto", 40)
    store.save(key, plan)
    os.replace(store._path(key), store._path(other_key))
    assert PlanStore(tmp_path).load(other_key) is None


def test_writes_leave_no_temp_debris(tmp_path):
    store = PlanStore(tmp_path)
    plan = compile_plan(example_5_21_query())
    store.save(plan_key(plan.query, "auto", 40), plan)
    leftovers = [
        name
        for name in os.listdir(store._version_dir)
        if not name.endswith(PLAN_FILE_SUFFIX)
    ]
    assert leftovers == []


def test_key_digest_is_stable_and_distinct():
    key_a = plan_key(compile_plan(QUERY).query, "auto", 40)
    key_b = plan_key(compile_plan("E(x, y)").query, "auto", 40)
    assert key_digest(key_a) == key_digest(key_a)
    assert key_digest(key_a) != key_digest(key_b)
    # Strategy and disjunct limit are part of the identity.
    assert key_digest(key_a) != key_digest(
        plan_key(compile_plan(QUERY).query, "naive", 40)
    )


def test_clear_removes_only_this_version(tmp_path):
    plan = compile_plan(QUERY)
    key = plan_key(plan.query, "auto", 40)
    old = PlanStore(tmp_path, version="1.0.0")
    new = PlanStore(tmp_path, version="2.0.0")
    old.save(key, plan)
    new.save(key, plan)
    new.clear()
    assert len(new) == 0
    assert len(old) == 1
