"""The serving front end: service semantics and the live HTTP server.

Covers the acceptance surface of the serving layer: correct counts
through every endpoint, admission control that rejects (never
queue-collapses) under saturation, per-request deadlines on both the
queue and the execution side, ``/metrics`` agreeing with
``Engine.stats()``, and graceful shutdown leaving zero child
processes.
"""

from __future__ import annotations

import asyncio
import json
import multiprocessing
import threading
import time
import urllib.error
import urllib.request

import pytest

from repro.core.counting import count_answers
from repro.engine.api import Engine
from repro.serve import (
    BackgroundServer,
    CountingServer,
    CountingService,
    ServiceClosed,
    ServiceConfig,
    ServiceSaturated,
    ServiceTimeout,
    structure_from_json,
)
from repro.structures.structure import Structure

TRIANGLE = {"E": [(1, 2), (2, 3), (3, 1)]}
PATH_QUERY = "exists z. (E(x, z) & E(z, y))"


def triangle() -> Structure:
    return Structure.from_relations(TRIANGLE)


class SlowEngine(Engine):
    """An engine whose ``count`` sleeps first -- saturation on demand."""

    def __init__(self, delay: float = 0.3, **kwargs):
        super().__init__(**kwargs)
        self.delay = delay

    def count(self, query, structure, strategy="auto", policy=None):
        time.sleep(self.delay)
        return super().count(query, structure, strategy, policy=policy)


# ----------------------------------------------------------------------
# Service-level semantics
# ----------------------------------------------------------------------
def test_service_counts_match_engine():
    async def scenario():
        async with CountingService() as service:
            graph = triangle()
            count = await service.count(PATH_QUERY, graph)
            sharded = await service.count_sharded(
                PATH_QUERY, graph, shard_count=2, parallel=False
            )
            grid = await service.count_many(
                [PATH_QUERY, "E(x, y)"], [graph], parallel=False
            )
            return count, sharded, grid

    count, sharded, grid = asyncio.run(scenario())
    expected = count_answers(PATH_QUERY, triangle(), engine=None)
    assert count == sharded == expected
    assert grid == [[expected], [3]]


def test_service_saturation_rejects_immediately():
    async def scenario():
        config = ServiceConfig(
            max_in_flight=1, max_queue=1, request_timeout_seconds=10
        )
        service = CountingService(
            engine=SlowEngine(0.3), config=config, owns_engine=True
        )
        async with service:
            before = time.perf_counter()
            results = await asyncio.gather(
                *(service.count("E(x, y)", triangle()) for _ in range(5)),
                return_exceptions=True,
            )
            elapsed = time.perf_counter() - before
            return results, elapsed, service.metrics()

    results, elapsed, metrics = asyncio.run(scenario())
    rejected = [r for r in results if isinstance(r, ServiceSaturated)]
    completed = [r for r in results if isinstance(r, int)]
    # One executing + one queued are admitted; the other three bounce.
    assert len(completed) == 2 and len(rejected) == 3
    assert all(count == 3 for count in completed)
    counters = metrics["service"]["endpoints"]["count"]
    assert counters["rejected"] == 3
    assert counters["completed"] == 2
    assert counters["requests"] == 5
    # Rejection is immediate, not queued: the whole burst takes about
    # two sequential slow counts, nowhere near five.
    assert elapsed < 5 * 0.3


def test_service_timeout_on_execution_and_queue():
    async def scenario():
        config = ServiceConfig(
            max_in_flight=1, max_queue=2, request_timeout_seconds=0.1
        )
        service = CountingService(
            engine=SlowEngine(0.4), config=config, owns_engine=True
        )
        async with service:
            outcomes = await asyncio.gather(
                *(service.count("E(x, y)", triangle()) for _ in range(2)),
                return_exceptions=True,
            )
            # Both the executing request and the queued one miss the
            # 0.1s deadline; the abandoned execution thread still holds
            # its slot until the sleep ends, then gets reaped.
            abandoned_during = service.metrics()["service"]["abandoned"]
            await asyncio.sleep(0.6)
            after = service.metrics()["service"]
            # The slot is usable again after the reap: a fresh request
            # is *admitted* (it times out on execution -- the engine is
            # slower than the deadline by construction -- but it is
            # never bounced as saturated, which is what a leaked slot
            # would produce).
            try:
                await service.count("E(x, y)", triangle())
                late = "completed"
            except ServiceTimeout:
                late = "admitted-then-timed-out"
            await asyncio.sleep(0.6)  # let the late thread reap too
            return outcomes, abandoned_during, after, late

    outcomes, abandoned_during, after, late = asyncio.run(scenario())
    assert all(isinstance(outcome, ServiceTimeout) for outcome in outcomes)
    assert abandoned_during == 1  # the executing one; the queued one never ran
    assert after["abandoned"] == 0
    assert after["executing"] == 0
    assert late == "admitted-then-timed-out"


def test_service_rejects_after_close():
    async def scenario():
        service = CountingService()
        await service.count("E(x, y)", triangle())
        await service.aclose()
        with pytest.raises(ServiceClosed):
            await service.count("E(x, y)", triangle())

    asyncio.run(scenario())


def test_service_metrics_mirror_engine_stats():
    async def scenario():
        engine = Engine()
        async with CountingService(engine=engine, owns_engine=True) as service:
            for _ in range(3):
                await service.count(PATH_QUERY, triangle())
            return service.metrics(), engine.stats().as_dict()

    metrics, stats = asyncio.run(scenario())
    engine_view = metrics["engine"]
    for field in ("count_calls", "plan_hits", "plan_misses", "context_hits"):
        assert engine_view[field] == stats[field]
    assert engine_view["count_calls"] == 3
    assert engine_view["plan_hits"] == 2
    latency = metrics["service"]["endpoints"]["count"]["latency"]
    assert latency["count"] == 3
    assert latency["p50_seconds"] is not None
    assert latency["p99_seconds"] >= latency["p50_seconds"]


def test_structure_from_json_forms():
    bare = structure_from_json({"E": [[1, 2], [2, 3], [3, 1]]})
    wrapped = structure_from_json(
        {"relations": {"E": [[1, 2], [2, 3], [3, 1]]}, "universe": [1, 2, 3, 4]}
    )
    assert bare == triangle()
    assert len(wrapped.universe) == 4
    from repro.serve import BadRequest

    with pytest.raises(BadRequest):
        structure_from_json([["not", "a", "mapping"]])
    with pytest.raises(BadRequest):
        structure_from_json({"E": [["ragged"], ["a", "b"]]})


# ----------------------------------------------------------------------
# The live HTTP server
# ----------------------------------------------------------------------
def _post(base: str, path: str, payload: dict, timeout: float = 30.0) -> dict:
    request = urllib.request.Request(
        f"{base}{path}",
        data=json.dumps(payload).encode(),
        headers={"Content-Type": "application/json"},
    )
    with urllib.request.urlopen(request, timeout=timeout) as response:
        return json.load(response)


def _get(base: str, path: str, timeout: float = 30.0) -> dict:
    with urllib.request.urlopen(f"{base}{path}", timeout=timeout) as response:
        return json.load(response)


def test_http_server_end_to_end():
    children_before = set(multiprocessing.active_children())
    engine = Engine(processes=2)
    server = CountingServer(
        service=CountingService(engine=engine, owns_engine=True), port=0
    )
    with BackgroundServer(server) as background:
        host, port = background.server.address
        base = f"http://{host}:{port}"

        assert _get(base, "/healthz")["status"] == "ok"

        expected = count_answers(PATH_QUERY, triangle(), engine=None)
        structure_json = {"relations": {"E": [[1, 2], [2, 3], [3, 1]]}}
        assert (
            _post(base, "/count", {"query": PATH_QUERY, "structure": structure_json})[
                "count"
            ]
            == expected
        )
        # Sharded execution over the live engine pool returns the same
        # count; this also forks real worker children that the shutdown
        # check below must see die.
        assert (
            _post(
                base,
                "/count_sharded",
                {
                    "query": PATH_QUERY,
                    "structure": structure_json,
                    "shard_count": 2,
                    "parallel": True,
                },
            )["count"]
            == expected
        )
        assert _post(
            base,
            "/count_many",
            {
                "queries": [PATH_QUERY, "E(x, y)"],
                "structures": [structure_json],
                "parallel": False,
            },
        )["counts"] == [[expected], [3]]

        metrics = _get(base, "/metrics")
        endpoints = metrics["service"]["endpoints"]
        assert endpoints["count"]["completed"] == 1
        assert endpoints["count_sharded"]["completed"] == 1
        assert endpoints["count_many"]["completed"] == 1
        assert metrics["engine"]["count_calls"] == engine.stats().count_calls
        assert metrics["pool"]["processes"] == 2

        # Error mapping.
        for path, payload, status in (
            ("/nope", {}, 404),
            ("/count", {"query": PATH_QUERY}, 400),  # missing structure
            ("/count", {"query": "E(x", "structure": structure_json}, 400),
            (
                "/count",
                {"query": PATH_QUERY, "structure": structure_json,
                 "strategy": "bogus"},
                400,
            ),
        ):
            with pytest.raises(urllib.error.HTTPError) as excinfo:
                _post(base, path, payload)
            assert excinfo.value.code == status
        with pytest.raises(urllib.error.HTTPError) as excinfo:
            _get(base, "/count")  # GET on a POST route
        assert excinfo.value.code == 405

    # Graceful shutdown: the engine's forked workers are joined, so no
    # child processes survive the server.
    lingering = set(multiprocessing.active_children()) - children_before
    assert not lingering


def test_http_server_saturation_returns_429():
    config = ServiceConfig(max_in_flight=1, max_queue=0, request_timeout_seconds=10)
    server = CountingServer(
        service=CountingService(
            engine=SlowEngine(0.5), config=config, owns_engine=True
        ),
        port=0,
    )
    with BackgroundServer(server) as background:
        host, port = background.server.address
        base = f"http://{host}:{port}"
        payload = {"query": "E(x, y)", "structure": {"relations": TRIANGLE_JSON}}

        # (status, retry_after) pairs; asserted on the main thread so a
        # failure actually fails the test (a thread-side assert would
        # be swallowed by threading).
        results: list[tuple[int, str | None]] = []
        lock = threading.Lock()

        def fire() -> None:
            try:
                _post(base, "/count", payload)
                with lock:
                    results.append((200, None))
            except urllib.error.HTTPError as error:
                with lock:
                    results.append((error.code, error.headers["Retry-After"]))

        threads = [threading.Thread(target=fire) for _ in range(4)]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join()

        statuses = [status for status, _ in results]
        assert statuses.count(200) >= 1
        assert statuses.count(429) >= 1
        assert set(statuses) <= {200, 429}
        assert all(
            retry == "1" for status, retry in results if status == 429
        )
        rejected = _get(base, "/metrics")["service"]["endpoints"]["count"]["rejected"]
        assert rejected == statuses.count(429)


TRIANGLE_JSON = {"E": [[1, 2], [2, 3], [3, 1]]}


def test_http_server_timeout_returns_504():
    config = ServiceConfig(max_in_flight=1, max_queue=0, request_timeout_seconds=0.1)
    server = CountingServer(
        service=CountingService(
            engine=SlowEngine(0.4), config=config, owns_engine=True
        ),
        port=0,
    )
    with BackgroundServer(server) as background:
        host, port = background.server.address
        base = f"http://{host}:{port}"
        with pytest.raises(urllib.error.HTTPError) as excinfo:
            _post(
                base,
                "/count",
                {"query": "E(x, y)", "structure": {"relations": TRIANGLE_JSON}},
            )
        assert excinfo.value.code == 504
        assert (
            _get(base, "/metrics")["service"]["endpoints"]["count"]["timeouts"] == 1
        )
