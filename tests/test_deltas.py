"""Live structures: versioned deltas through every caching layer.

One suite per layer of the delta pipeline: the delta value object and
its canonical digest, chained structure fingerprints, per-shard delta
routing, incremental re-encoding, read-set context invalidation, the
registry's optimistic version advance, the engine's end-to-end
``apply_delta``, and the HTTP ``PATCH /structures/<name>`` surface with
its ``409`` optimistic-concurrency contract.
"""

from __future__ import annotations

import json
import urllib.error
import urllib.request

import pytest

from repro.engine import Engine, UnknownStructureError, VersionConflict
from repro.engine.context import ExecutionContext
from repro.engine.executor import execute
from repro.engine.plan import compile_plan
from repro.engine.registry import StructureRegistry
from repro.exceptions import DeltaError, DeltaRoutingError, ReproError
from repro.serve import BackgroundServer, CountingServer
from repro.structures.delta import StructureDelta
from repro.structures.encoding import EncodedStructure
from repro.structures.sharding import ShardedStructure, shard_structure
from repro.structures.structure import Structure

PATH_QUERY = "exists z. (E(x, z) & E(z, y))"


def two_paths() -> Structure:
    """Two disjoint paths: deltas can stay inside one component."""
    return Structure.from_relations(
        {"E": [(1, 2), (2, 3), (3, 4), (10, 11), (11, 12)]}
    )


def shard_placement(sharded: ShardedStructure) -> dict:
    """Element -> shard index, derived from the shard universes."""
    return {
        element: index
        for index, shard in enumerate(sharded.shards)
        for element in shard.universe
    }


def reference_count(structure: Structure) -> int:
    """The count on a from-scratch rebuild, through a fresh engine."""
    rebuilt = Structure(
        structure.signature,
        sorted(structure.universe, key=repr),
        {name: sorted(tuples, key=repr)
         for name, tuples in structure.relations.items()},
    )
    with Engine() as engine:
        return engine.count(PATH_QUERY, rebuilt)


# ----------------------------------------------------------------------
# The delta value object
# ----------------------------------------------------------------------
def test_delta_canonicalization_makes_equal_deltas_digest_equal():
    a = StructureDelta(inserts={"E": [(1, 2), (3, 4)]})
    b = StructureDelta(inserts={"E": [(3, 4), (1, 2), (1, 2)]})
    assert a == b
    assert hash(a) == hash(b)
    assert a.digest() == b.digest()
    assert a.canonical_bytes() == b.canonical_bytes()


def test_delta_accessors_and_empty_form():
    delta = StructureDelta(
        inserts={"E": [(1, 2)]}, deletes={"F": [(3,)], "E": [(9, 9)]}
    )
    assert delta.relations == {"E", "F"}
    assert delta.tuple_count == 3
    assert not delta.is_empty
    assert delta.inserted_elements() == {1, 2}
    empty = StructureDelta()
    assert empty.is_empty and empty.tuple_count == 0
    # Explicitly-empty batches are dropped, not recorded.
    assert StructureDelta(inserts={"E": []}).is_empty


def test_delta_rejects_malformed_batches():
    with pytest.raises(DeltaError):
        StructureDelta(inserts={"E": [(1, 2), (1, 2, 3)]})  # mixed arity
    with pytest.raises(DeltaError):
        StructureDelta(inserts={"E": [()]})  # empty tuple
    with pytest.raises(DeltaError):
        StructureDelta(inserts={"": [(1,)]})  # unnamed relation
    with pytest.raises(DeltaError):
        # The same tuple on both sides of the same relation.
        StructureDelta(inserts={"E": [(1, 2)]}, deletes={"E": [(1, 2)]})


# ----------------------------------------------------------------------
# Chained structure fingerprints
# ----------------------------------------------------------------------
def test_apply_delta_chains_fingerprint_deterministically():
    base = two_paths()
    delta = StructureDelta(inserts={"E": [(4, 5)]})
    once = base.apply_delta(delta)
    twice = two_paths().apply_delta(StructureDelta(inserts={"E": [(4, 5)]}))
    assert once.fingerprint() == twice.fingerprint()
    # Chained, not content-derived: the same relations built from
    # scratch fingerprint differently from the delta-applied version.
    rebuilt = Structure.from_relations(
        {"E": sorted(once.relations["E"])}, universe=sorted(once.universe)
    )
    assert rebuilt == once
    assert rebuilt.fingerprint() != once.fingerprint()


def test_apply_delta_is_strict_and_grows_universe_only():
    base = two_paths()
    with pytest.raises(DeltaError):
        base.apply_delta(StructureDelta(deletes={"E": [(7, 7)]}))
    with pytest.raises(DeltaError):
        base.apply_delta(StructureDelta(inserts={"E": [(1, 2)]}))
    with pytest.raises(DeltaError):
        base.apply_delta(StructureDelta(inserts={"E": [(1, 2, 3)]}))
    grown = base.apply_delta(
        StructureDelta(inserts={"E": [(100, 101)]}, deletes={"E": [(1, 2)]})
    )
    assert {100, 101} <= set(grown.universe)
    # Deleting tuples never removes elements from the universe.
    assert set(base.universe) <= set(grown.universe)
    assert base.apply_delta(StructureDelta()) is base


def test_apply_delta_touches_only_named_relations():
    base = Structure.from_relations({"E": [(1, 2)], "F": [(2, 3)]})
    after = base.apply_delta(StructureDelta(inserts={"E": [(5, 6)]}))
    assert after.relations["F"] == base.relations["F"]
    assert after.relations["E"] == frozenset({(1, 2), (5, 6)})


# ----------------------------------------------------------------------
# Shard routing
# ----------------------------------------------------------------------
def test_route_delta_reuses_untouched_shards():
    sharded = shard_structure(two_paths(), 2)
    # Insert inside whichever component is alone on its shard.
    delta = StructureDelta(inserts={"E": [(12, 13)]})
    routed = sharded.route_delta(delta)
    touched = [i for i, sub in enumerate(routed) if sub is not None]
    assert len(touched) == 1
    migrated = sharded.apply_delta(delta)
    for i, (old, new) in enumerate(zip(sharded.shards, migrated.shards)):
        if i in touched:
            assert (12, 13) in new.relations["E"]
        else:
            assert new is old  # untouched shards reused by reference
    assert migrated.structure.fingerprint() == (
        sharded.structure.apply_delta(delta).fingerprint()
    )


def test_route_delta_rejects_cross_shard_component_merges():
    many_components = Structure.from_relations(
        {"E": [(i, i + 1) for i in range(0, 20, 2)]}
    )
    sharded = shard_structure(many_components, 2)
    # Find two elements living on different shards; an edge between
    # them merges their components across the shard boundary.
    by_shard: dict[int, object] = {}
    for element, shard in shard_placement(sharded).items():
        by_shard.setdefault(shard, element)
    assert len(by_shard) == 2
    a, b = by_shard.values()
    with pytest.raises(DeltaRoutingError):
        sharded.route_delta(StructureDelta(inserts={"E": [(a, b)]}))


# ----------------------------------------------------------------------
# Incremental encoding
# ----------------------------------------------------------------------
def test_encoded_apply_delta_matches_full_reencode():
    base = two_paths()
    encoded = EncodedStructure(base)
    delta = StructureDelta(
        inserts={"E": [(4, 5), (50, 51)]}, deletes={"E": [(10, 11)]}
    )
    after = base.apply_delta(delta)
    incremental = encoded.apply_delta(delta)
    fresh = EncodedStructure(after)
    for name in after.relations:
        assert set(incremental.relations[name].iter_rows()) == set(
            fresh.relations[name].iter_rows()
        )
    # Existing integer codes never change; new elements extend the end.
    for element in base.universe:
        assert incremental.encode[element] == encoded.encode[element]
    assert set(incremental.decode) == set(after.universe)


# ----------------------------------------------------------------------
# Context migration with read-set invalidation
# ----------------------------------------------------------------------
def test_context_apply_delta_returns_fresh_context_sharing_stats():
    base = two_paths()
    context = ExecutionContext(base)
    plan = compile_plan(PATH_QUERY, "auto")
    before = execute(plan, base, context)
    delta = StructureDelta(inserts={"E": [(4, 5)]})
    migrated = context.apply_delta(delta)
    assert migrated is not context
    assert migrated.stats is context.stats
    assert migrated.structure == base.apply_delta(delta)
    assert execute(plan, migrated.structure, migrated) == reference_count(
        migrated.structure
    )
    # The untouched original still serves the old version.
    assert execute(plan, base, context) == before
    # An empty delta is the identity, not a copy.
    assert context.apply_delta(StructureDelta()) is context


def test_context_apply_delta_keeps_memos_for_untouched_relations():
    base = Structure.from_relations(
        {"E": [(1, 2), (2, 3), (3, 4)], "F": [(1, 2)]}
    )
    plan = compile_plan(PATH_QUERY, "auto")
    context = ExecutionContext(base)
    execute(plan, base, context)
    # A delta touching only F and adding no elements: the E-only count
    # memo survives the migration, so re-executing is a memo hit (no
    # new boundary-memo misses).
    migrated = context.apply_delta(StructureDelta(deletes={"F": [(1, 2)]}))
    misses_before = context.stats.snapshot().boundary_misses
    count = execute(plan, migrated.structure, migrated)
    assert count == reference_count(migrated.structure)
    assert context.stats.snapshot().boundary_misses == misses_before
    # A delta on E evicts those memos, and memo_evictions says so.
    evictions_before = context.stats.snapshot().memo_evictions
    migrated.apply_delta(StructureDelta(inserts={"E": [(4, 5)]}))
    assert context.stats.snapshot().memo_evictions > evictions_before


# ----------------------------------------------------------------------
# Registry versioning
# ----------------------------------------------------------------------
def test_registry_advance_bumps_version_and_checks_identity():
    registry = StructureRegistry()
    base = two_paths()
    entry, _, _ = registry.register("g", base, pin=False)
    assert entry.version == 1
    delta = StructureDelta(inserts={"E": [(4, 5)]})
    advanced = registry.advance("g", entry, base.apply_delta(delta))
    assert advanced.version == 2
    assert advanced.fingerprint != entry.fingerprint
    assert registry.peek("g") is advanced
    # Committing against the stale parent snapshot conflicts.
    with pytest.raises(VersionConflict):
        registry.advance("g", entry, base.apply_delta(delta))


def test_registry_advance_expect_version_mismatch_is_conflict():
    registry = StructureRegistry()
    base = two_paths()
    entry, _, _ = registry.register("g", base, pin=False)
    delta = StructureDelta(inserts={"E": [(4, 5)]})
    with pytest.raises(VersionConflict) as excinfo:
        registry.advance(
            "g", entry, base.apply_delta(delta), expect_version=7
        )
    assert excinfo.value.expected == 7
    assert excinfo.value.actual == 1
    with pytest.raises(UnknownStructureError):
        registry.advance("nope", entry, base.apply_delta(delta))


def test_registry_entry_as_dict_exposes_version():
    registry = StructureRegistry()
    entry, _, _ = registry.register("g", two_paths(), pin=False)
    assert entry.as_dict()["version"] == 1


def test_advance_incremental_bytes_match_full_sweep():
    # advance(delta=...) carries resident_bytes incrementally; the
    # estimate must agree exactly with a fresh full sweep through
    # inserts of new elements, inserts of known elements, and deletes.
    from repro.engine.registry import approximate_structure_bytes

    registry = StructureRegistry()
    base = two_paths()
    entry, _, _ = registry.register("g", base, pin=False)
    assert entry.resident_bytes == approximate_structure_bytes(base)
    deltas = [
        StructureDelta(inserts={"E": [(4, 99), (99, 100)]}),
        StructureDelta(inserts={"E": [(99, 1)]}, deletes={"E": [(1, 2)]}),
        StructureDelta(deletes={"E": [(99, 100)]}),
    ]
    for delta in deltas:
        entry = registry.advance(
            "g", entry, entry.structure.apply_delta(delta), delta=delta
        )
        assert entry.resident_bytes == approximate_structure_bytes(
            entry.structure
        )


# ----------------------------------------------------------------------
# Engine end to end
# ----------------------------------------------------------------------
def test_engine_apply_delta_counts_track_every_version():
    with Engine() as engine:
        base = two_paths()
        engine.register_structure("g", base, pin=False, shard_count=2)
        engine.count(PATH_QUERY, "g")
        entry = engine.apply_delta(
            "g", StructureDelta(inserts={"E": [(4, 5)]})
        )
        assert entry.version == 2
        expected = reference_count(entry.structure)
        assert engine.count(PATH_QUERY, "g") == expected
        assert engine.count_sharded(PATH_QUERY, "g", parallel=False) == expected
        entry = engine.apply_delta(
            "g", StructureDelta(deletes={"E": [(1, 2)]}), expect_version=2
        )
        assert entry.version == 3
        assert engine.count(PATH_QUERY, "g") == reference_count(entry.structure)
        stats = engine.stats()
        assert stats.delta_applies == 2
        assert stats.memo_evictions >= 1


def test_engine_apply_delta_version_conflicts_and_unknown_names():
    with Engine() as engine:
        engine.register_structure("g", two_paths(), pin=False)
        with pytest.raises(VersionConflict):
            engine.apply_delta(
                "g", StructureDelta(inserts={"E": [(4, 5)]}), expect_version=9
            )
        with pytest.raises(UnknownStructureError):
            engine.apply_delta(
                "nope", StructureDelta(inserts={"E": [(4, 5)]})
            )
        with pytest.raises(ReproError):
            engine.apply_delta("g", "not a delta")  # type: ignore[arg-type]


def test_engine_apply_delta_reshards_on_cross_shard_merge():
    with Engine() as engine:
        base = Structure.from_relations(
            {"E": [(i, i + 1) for i in range(0, 20, 2)]}
        )
        engine.register_structure("g", base, pin=False, shard_count=2)
        sharded = engine.registry.peek("g").sharded
        by_shard: dict[int, object] = {}
        for element, shard in shard_placement(sharded).items():
            by_shard.setdefault(shard, element)
        assert len(by_shard) == 2
        a, b = by_shard.values()
        entry = engine.apply_delta(
            "g", StructureDelta(inserts={"E": [(a, b)]})
        )
        assert entry.version == 2
        assert entry.sharded is not sharded
        expected = reference_count(entry.structure)
        assert engine.count_sharded(PATH_QUERY, "g", parallel=False) == expected


def test_engine_apply_delta_migrates_pinned_worker_contexts():
    # Disjoint edges: "x has an out-edge" changes with every inserted
    # edge, so pre- and post-delta counts must differ.
    out_query = "exists y. E(x, y)"
    edges = [(i, i + 1) for i in range(0, 40, 2)]
    base = Structure.from_relations({"E": edges}, universe=range(41))
    with Engine(processes=2) as engine:
        entry = engine.register_structure("g", base, pin=True, shard_count=4)
        before = engine.count_sharded(out_query, "g", parallel=True)
        assert engine.pool.started
        new_entry = engine.apply_delta(
            "g", StructureDelta(inserts={"E": [(100, 101)]})
        )
        for pinned in engine.pool.worker_pinned_fingerprints():
            assert new_entry.fingerprint in pinned
            assert entry.fingerprint not in pinned
        after = engine.count_sharded(out_query, "g", parallel=True)
        with Engine() as fresh:
            assert after == fresh.count(
                "exists y. E(x, y)",
                Structure.from_relations(
                    {"E": edges + [(100, 101)]},
                    universe=list(range(41)) + [100, 101],
                ),
            )
        assert before + 1 == after


# ----------------------------------------------------------------------
# Stale-shard-plan regression (re-registration with a drifted plan)
# ----------------------------------------------------------------------
def test_count_sharded_ignores_drifted_registration_shard_plan():
    with Engine() as engine:
        s1 = two_paths()
        engine.register_structure("g", s1, pin=False, shard_count=2)
        stale_plan = engine.registry.peek("g").sharded
        s2 = Structure.from_relations(
            {"E": [(1, 2), (2, 3), (3, 4), (4, 5), (20, 21), (21, 22)]}
        )
        # Seed an entry whose recorded shard plan belongs to different
        # data (what a buggy re-registration path would leave behind):
        # counting by reference must detect the drift and re-partition
        # instead of trusting the recorded plan.
        engine.registry.register(
            "g", s2, pin=False, shard_count=2, sharded=stale_plan
        )
        expected = engine.count(PATH_QUERY, s2)
        assert (
            engine.count_sharded(PATH_QUERY, "g", parallel=False) == expected
        )


# ----------------------------------------------------------------------
# HTTP surface
# ----------------------------------------------------------------------
def _request(base: str, method: str, path: str, payload=None):
    body = None if payload is None else json.dumps(payload).encode()
    request = urllib.request.Request(
        base + path,
        data=body,
        method=method,
        headers={"Content-Type": "application/json"},
    )
    try:
        with urllib.request.urlopen(request, timeout=30) as response:
            return response.status, json.loads(response.read())
    except urllib.error.HTTPError as error:
        return error.code, json.loads(error.read())


def test_http_patch_applies_delta_and_enforces_versions():
    server = CountingServer(port=0)
    with BackgroundServer(server) as background:
        host, port = background.server.address
        base = f"http://{host}:{port}"
        status, body = _request(
            base,
            "PUT",
            "/structures/g",
            {"structure": {"E": [[1, 2], [2, 3], [10, 11]]}, "shard_count": 2},
        )
        assert status == 200 and body["version"] == 1
        status, body = _request(
            base, "POST", "/count",
            {"query": PATH_QUERY, "structure": {"ref": "g"}},
        )
        assert status == 200
        before = body["count"]
        status, body = _request(
            base, "PATCH", "/structures/g",
            {"insert": {"E": [[3, 4]]}, "expect_version": 1},
        )
        assert status == 200
        assert body["version"] == 2
        status, body = _request(
            base, "POST", "/count",
            {"query": PATH_QUERY, "structure": {"ref": "g"}},
        )
        assert status == 200 and body["count"] == before + 1
        # Optimistic concurrency: a stale expect_version is a 409 that
        # changes nothing.
        status, body = _request(
            base, "PATCH", "/structures/g",
            {"insert": {"E": [[5, 6]]}, "expect_version": 1},
        )
        assert status == 409
        assert body["expected_version"] == 1 and body["actual_version"] == 2
        status, body = _request(base, "GET", "/structures/g")
        assert status == 200 and body["version"] == 2
        # Unknown name and malformed deltas.
        status, body = _request(
            base, "PATCH", "/structures/nope", {"insert": {"E": [[1, 2]]}}
        )
        assert status == 404 and "g" in body["known_structures"]
        status, body = _request(base, "PATCH", "/structures/g", {})
        assert status == 400
        status, body = _request(
            base, "PATCH", "/structures/g", {"delete": {"E": [[99, 98]]}}
        )
        assert status == 400
        # The new counters flow through /metrics.
        status, body = _request(base, "GET", "/metrics")
        assert status == 200
        assert body["engine"]["delta_applies"] == 1
