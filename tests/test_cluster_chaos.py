"""Chaos and fault-injection scenarios for the execution cluster.

The failure-recovery claims in ``docs/cluster.md`` are only worth the
tests that *cause* the failures: a worker SIGKILLed mid-count, a worker
whose uplink drops every frame, a coordinator that refuses
registrations, registrations churning under concurrent counting load.
Every scenario asserts the engine's exactness contract end to end --
the count after recovery equals the sequential count, bit for bit.

Fault injection rides the ``REPRO_FAULTS`` seam
(`repro.cluster.faults`); in particular ``delay_execute`` widens the
in-flight window so the mid-count SIGKILL lands deterministically on a
1-CPU CI box instead of racing the scheduler.
"""

from __future__ import annotations

import os
import signal
import threading
import time

from repro.cluster import ClusterCoordinator, FaultInjector, load_fault_plan
from repro.engine import Engine
from repro.structures.random_gen import random_cluster_graph

from test_cluster import reap, spawn_workers

QUERY = "exists z. (E(x, z) & E(z, y))"


# ----------------------------------------------------------------------
# The acceptance scenario: SIGKILL one of three workers mid-count
# ----------------------------------------------------------------------
def test_sigkill_one_of_three_mid_count_stays_exact_and_fast():
    graph = random_cluster_graph(8, 4, 0.5, seed=41)
    with ClusterCoordinator(
        heartbeat_interval=0.2, replication=2
    ) as coordinator:
        # delay_execute holds every shard job in flight for a full
        # second: the kill window is sleep-dominated, not
        # scheduler-dominated, so the test is timing-robust.
        workers = spawn_workers(
            coordinator,
            3,
            capacity=2,
            faults="delay_execute=1.0",
            name_prefix="chaos",
        )
        try:
            coordinator.wait_for_workers(3, timeout=30)
            with Engine(processes=1) as engine:
                expected = engine.count(QUERY, graph)
                engine.attach_cluster(coordinator)
                engine.register_structure(
                    "net", graph, pin=True, shard_count=8
                )
                # Unperturbed baseline over the same cluster.
                started = time.monotonic()
                assert engine.count_sharded(QUERY, "net") == expected
                unperturbed = time.monotonic() - started

                # Perturbed run: count in a thread, kill a busy worker.
                outcome: dict = {}

                def count() -> None:
                    outcome["value"] = engine.count_sharded(QUERY, "net")

                thread = threading.Thread(target=count)
                started = time.monotonic()
                thread.start()
                victim_pid = None
                deadline = time.monotonic() + 10
                while victim_pid is None and time.monotonic() < deadline:
                    details = coordinator.status()["worker_details"]
                    busy = [
                        detail
                        for detail in details.values()
                        if detail["in_flight"] > 0 and detail["pid"]
                    ]
                    if busy:
                        victim = max(busy, key=lambda d: d["in_flight"])
                        victim_pid = victim["pid"]
                    else:
                        time.sleep(0.01)
                assert victim_pid is not None, "no worker ever held a job"
                os.kill(victim_pid, signal.SIGKILL)
                thread.join(timeout=60)
                assert not thread.is_alive(), "count wedged after the kill"
                perturbed = time.monotonic() - started

                # Exactness survives the kill...
                assert outcome["value"] == expected
                stats = coordinator.stats_snapshot()
                # ...because in-flight units were genuinely reassigned.
                assert stats["reassignments"] >= 1
                assert stats["worker_failures"] >= 1
                assert stats["jobs_failed"] == 0
                assert coordinator.status()["workers"] == 2
                # Recovery latency: under 2x the unperturbed run.
                assert perturbed < 2.0 * unperturbed, (
                    f"recovery took {perturbed:.2f}s vs "
                    f"{unperturbed:.2f}s unperturbed"
                )
                # The cluster keeps serving exactly with 2 workers.
                assert engine.count_sharded(QUERY, "net") == expected
        finally:
            reap(workers)


# ----------------------------------------------------------------------
# Registration churn under concurrent counting load
# ----------------------------------------------------------------------
def test_registration_churn_under_concurrent_counting_load():
    base = random_cluster_graph(4, 5, 0.5, seed=43)
    with ClusterCoordinator(replication=1) as coordinator:
        workers = spawn_workers(coordinator, 2, name_prefix="churn")
        try:
            coordinator.wait_for_workers(2, timeout=30)
            with Engine(processes=1) as engine:
                expected = engine.count(QUERY, base)
                engine.attach_cluster(coordinator)
                engine.register_structure(
                    "net", base, pin=True, shard_count=4
                )
                errors: list = []

                def churn() -> None:
                    try:
                        for index in range(8):
                            name = f"tmp{index}"
                            tmp = random_cluster_graph(
                                2, 4, 0.6, seed=100 + index
                            )
                            engine.register_structure(
                                name, tmp, pin=True, shard_count=2
                            )
                            assert engine.count_sharded(
                                QUERY, name
                            ) == engine.count(QUERY, tmp)
                            engine.unregister_structure(name)
                    except Exception as exc:  # pragma: no cover
                        errors.append(exc)

                thread = threading.Thread(target=churn)
                thread.start()
                try:
                    for _ in range(10):
                        assert (
                            engine.count_sharded(QUERY, "net") == expected
                        )
                finally:
                    thread.join(timeout=90)
                assert not thread.is_alive()
                assert not errors, errors
                # Churned registrations were unplaced on the way out;
                # only the base structure's shards remain resident.
                entry = engine.registry.peek("net")
                assert coordinator.status()["placements"] == len(
                    entry.sharded.non_empty_shards()
                )
                assert engine.count_sharded(QUERY, "net") == expected
                assert coordinator.stats_snapshot()["jobs_failed"] == 0
        finally:
            reap(workers)


# ----------------------------------------------------------------------
# REPRO_FAULTS scenarios
# ----------------------------------------------------------------------
def test_dark_worker_trips_heartbeat_deadline_and_fails_over():
    # drop_frame=1.0 models a worker whose uplink goes completely dark
    # *after* the (exempt) registration handshake: its heartbeats and
    # results all vanish, the deadline trips, and its jobs fail over.
    graph = random_cluster_graph(4, 4, 0.5, seed=47)
    with ClusterCoordinator(
        heartbeat_interval=0.3, replication=2
    ) as coordinator:
        healthy = spawn_workers(coordinator, 1, name_prefix="healthy")
        dark = []
        try:
            coordinator.wait_for_workers(1, timeout=30)
            with Engine(processes=1) as engine:
                # Pre-pay the slow bits (engine startup, the sequential
                # baseline) *before* the dark worker joins, so the
                # placement + count below land well inside its
                # heartbeat deadline -- jobs must reach the dark worker
                # while the coordinator still believes in it.
                expected = engine.count(QUERY, graph)
                engine.attach_cluster(coordinator)
                dark = spawn_workers(
                    coordinator, 1, faults="drop_frame=1.0",
                    name_prefix="dark",
                )
                coordinator.wait_for_workers(2, timeout=30)
                engine.register_structure(
                    "net", graph, pin=True, shard_count=4
                )
                assert engine.count_sharded(QUERY, "net") == expected
                stats = coordinator.stats_snapshot()
                assert stats["heartbeat_timeouts"] >= 1
                assert stats["worker_failures"] >= 1
                assert stats["reassignments"] >= 1
                assert stats["jobs_failed"] == 0
                assert coordinator.status()["workers"] == 1
                # The healthy worker's heartbeats kept flowing.
                assert stats["heartbeats"] >= 1
        finally:
            reap(healthy + dark)


def test_refused_registrations_back_off_and_eventually_join():
    # Coordinator-side injection: half of all register handshakes are
    # refused (seeded, so the sequence replays); workers retry with
    # backoff until accepted.
    injector = FaultInjector(load_fault_plan("refuse_registration=0.5,seed=3"))
    with ClusterCoordinator(faults=injector) as coordinator:
        workers = spawn_workers(coordinator, 2, name_prefix="persistent")
        try:
            coordinator.wait_for_workers(2, timeout=30)
            stats = coordinator.stats_snapshot()
            assert stats["registrations"] == 2
            assert stats["registrations_refused"] >= 1
            assert (
                injector.counters["registrations_refused"]
                == stats["registrations_refused"]
            )
        finally:
            reap(workers)
