"""The observability stack: tracing, structured logs, Prometheus text.

Covers the acceptance surface of ``repro.obs``: span trees assembled
across the fork boundary (one worker-recorded ``shard.execute[i]`` span
per shard, error-annotated traces when a worker job dies), the trace
ring buffer and debug endpoints, request-id propagation over live HTTP,
Prometheus exposition rendered/parsed/validated round-trip, the
JSON-lines log formatter, and the latency-histogram percentile edge
cases the renderer depends on.
"""

from __future__ import annotations

import io
import json
import logging
import math
import urllib.error
import urllib.request

import pytest

from repro.engine.api import Engine
from repro.engine import pool as pool_module
from repro.obs import log as obs_log
from repro.obs import trace as obs_trace
from repro.obs.prom import (
    CONTENT_TYPE,
    family_names,
    parse_exposition,
    render_prometheus,
    validate_exposition,
)
from repro.obs.trace import Tracer, get_tracer
from repro.serve import (
    BackgroundServer,
    CountingServer,
    CountingService,
    ServiceConfig,
)
from repro.serve.service import LatencyHistogram
from repro.structures.structure import Structure

PATH_QUERY = "exists z. (E(x, z) & E(z, y))"


@pytest.fixture(autouse=True)
def clean_tracer():
    """Each test starts with an empty, env-default tracer."""
    tracer = get_tracer()
    tracer.set_enabled(None)
    tracer.clear()
    yield tracer
    tracer.set_enabled(None)
    tracer.clear()


def triangles(count: int) -> Structure:
    """``count`` disjoint triangles -- ``count`` connected components,
    so sharded execution genuinely fans out."""
    edges = []
    for i in range(count):
        a, b, c = 3 * i, 3 * i + 1, 3 * i + 2
        edges += [(a, b), (b, c), (c, a)]
    return Structure.from_relations({"E": edges})


# ----------------------------------------------------------------------
# Tracer core
# ----------------------------------------------------------------------
def test_trace_tree_and_ring_buffer():
    tracer = Tracer(capacity=2, enabled=True)
    with tracer.trace("first", request_id="req-1") as trace:
        with tracer.span("outer", depth=1) as outer:
            with tracer.span("inner") as inner:
                inner.set("answer", 42)
        assert outer.duration_seconds is not None

    assert len(tracer) == 1
    kept = tracer.get(trace.trace_id)
    assert kept is trace
    tree = kept.as_dict()
    assert tree["trace_id"] == trace.trace_id
    assert tree["request_id"] == "req-1"
    assert tree["span_count"] == 3
    root = tree["root"]
    assert root["name"] == "first"
    (outer_node,) = root["children"]
    assert outer_node["name"] == "outer"
    assert outer_node["attributes"] == {"depth": 1}
    (inner_node,) = outer_node["children"]
    assert inner_node["attributes"] == {"answer": 42}

    # Ring buffer: capacity 2, newest first, oldest evicted.
    with tracer.trace("second"):
        pass
    with tracer.trace("third"):
        pass
    names = [t.root.name for t in tracer.finished_traces()]
    assert names == ["third", "second"]
    assert tracer.get(trace.trace_id) is None


def test_trace_records_exceptions():
    tracer = Tracer(enabled=True)
    with pytest.raises(ValueError):
        with tracer.trace("failing"):
            with tracer.span("step"):
                raise ValueError("boom")
    (trace,) = tracer.finished_traces()
    assert trace.root.error == "ValueError: boom"
    step = next(s for s in trace.spans() if s.name == "step")
    assert step.error == "ValueError: boom"
    assert trace.summary()["error"] == "ValueError: boom"


def test_disabled_tracer_is_inert():
    tracer = Tracer(enabled=False)
    with tracer.trace("ignored") as trace:
        with tracer.span("child") as span:
            span.set("k", "v")
        trace.set("root-attr", 1)
    assert len(tracer) == 0
    assert trace.as_dict() == {}
    cap = tracer.capture("worker")
    with cap:
        pass
    assert cap.spans is None


def test_capture_and_attach_foreign_reparents_spans():
    tracer = Tracer(enabled=True)
    # Worker side: record an unretained local trace, serialize it.
    cap = tracer.capture("shard.execute", units=3)
    with cap:
        with tracer.span("context.build", universe=9):
            pass
    assert cap.spans is not None

    # Parent side: re-parent under the ambient trace, suffixing the root.
    with tracer.trace("parent") as trace:
        with tracer.span("shard.fanout"):
            assert tracer.attach_foreign(cap.spans, suffix="[0]")
    tree = trace.as_dict()["root"]
    (fanout,) = tree["children"]
    (shard,) = fanout["children"]
    assert shard["name"] == "shard.execute[0]"
    assert shard["attributes"] == {"units": 3}
    (build,) = shard["children"]
    assert build["name"] == "context.build"

    # No ambient trace -> spans are dropped, not crashed on.
    assert tracer.attach_foreign(cap.spans) is False


def test_stage_breakdown_sums_direct_children():
    tracer = Tracer(enabled=True)
    with tracer.trace("request") as trace:
        for _ in range(2):
            with tracer.span("plan.compile"):
                with tracer.span("nested"):
                    pass
    stages = trace.stage_breakdown()
    assert set(stages) == {"plan.compile"}
    assert stages["plan.compile"] > 0


# ----------------------------------------------------------------------
# Trace propagation across the pool boundary
# ----------------------------------------------------------------------
def test_count_sharded_traces_one_worker_span_per_shard():
    engine = Engine(processes=2)
    tracer = get_tracer()
    tracer.set_enabled(True)
    try:
        structure = triangles(12)
        count = engine.count_sharded(
            PATH_QUERY, structure, shard_count=4, parallel=True
        )
        assert count == 12 * 3  # 3 directed 2-paths per triangle
    finally:
        engine.close()

    trace = tracer.finished_traces()[0]
    assert trace.root.name == "engine.count_sharded"
    shard_spans = sorted(
        (s for s in trace.spans() if s.name.startswith("shard.execute[")),
        key=lambda s: s.name,
    )
    assert [s.name for s in shard_spans] == [
        f"shard.execute[{i}]" for i in range(4)
    ]
    for span in shard_spans:
        # Worker-recorded wall clock, shipped back through the job result.
        assert span.duration_seconds is not None
        assert span.duration_seconds >= 0
        assert span.attributes["units"] >= 1
        assert "context_hit" in span.attributes
    fanout = next(s for s in trace.spans() if s.name == "shard.fanout")
    assert fanout.attributes["shards"] == 4
    assert any(s.name == "combine" for s in trace.spans())
    assert any(s.name == "plan.compile" for s in trace.spans())


def test_worker_exception_still_produces_error_annotated_trace(monkeypatch):
    def explode(structure):
        raise RuntimeError("worker blew up")

    # Patch before the pool forks so the workers inherit the broken
    # resident-context path.
    monkeypatch.setattr(pool_module, "_resident_context", explode)
    engine = Engine(processes=2)
    tracer = get_tracer()
    tracer.set_enabled(True)
    try:
        # The executor unwraps WorkerTaskError to the original error.
        with pytest.raises(RuntimeError, match="worker blew up"):
            engine.count_sharded(
                PATH_QUERY, triangles(12), shard_count=4, parallel=True
            )
    finally:
        engine.close()

    trace = tracer.finished_traces()[0]
    assert trace.root.error is not None
    shard_spans = [
        s for s in trace.spans() if s.name.startswith("shard.execute[")
    ]
    assert shard_spans  # failed worker jobs still ship their spans back
    assert all(
        "RuntimeError: worker blew up" == s.error for s in shard_spans
    )


def test_count_sharded_sequential_records_same_span_shape():
    engine = Engine()
    tracer = get_tracer()
    tracer.set_enabled(True)
    try:
        count = engine.count_sharded(
            PATH_QUERY, triangles(8), shard_count=4, parallel=False
        )
        assert count == 8 * 3
    finally:
        engine.close()
    trace = tracer.finished_traces()[0]
    names = {s.name for s in trace.spans()}
    assert {f"shard.execute[{i}]" for i in range(4)} <= names
    assert "combine" in names


# ----------------------------------------------------------------------
# Structured logging
# ----------------------------------------------------------------------
def test_json_line_formatter_includes_extras_and_exceptions():
    stream = io.StringIO()
    handler = logging.StreamHandler(stream)
    handler.setFormatter(obs_log.JsonLineFormatter())
    logger = logging.getLogger("test.obs.json")
    logger.setLevel(logging.DEBUG)
    logger.addHandler(handler)
    logger.propagate = False
    try:
        logger.info("hello", extra={"request_id": "abc", "status": 200})
        try:
            raise ValueError("oops")
        except ValueError:
            logger.exception("it failed")
    finally:
        logger.removeHandler(handler)

    first, second = stream.getvalue().splitlines()
    record = json.loads(first)
    assert record["message"] == "hello"
    assert record["level"] == "INFO"
    assert record["logger"] == "test.obs.json"
    assert record["request_id"] == "abc"
    assert record["status"] == 200
    assert isinstance(record["ts"], float)
    failure = json.loads(second)
    assert "ValueError: oops" in failure["exception"]


def test_configure_is_idempotent_and_validates_level():
    def marked(logger):
        return [
            h for h in logger.handlers
            if getattr(h, "_repro_obs_handler", False)
        ]

    root = obs_log.configure(level="warning")
    assert len(marked(root)) == 1
    again = obs_log.configure(level="debug")
    assert again is root
    # Reconfiguring replaces the attached handler instead of stacking.
    assert len(marked(root)) == 1
    assert root.level == logging.DEBUG
    with pytest.raises(ValueError):
        obs_log.configure(level="chatty")
    assert obs_log.get_logger("engine.pool").name == "repro.engine.pool"
    assert obs_log.get_logger("repro.engine.pool").name == "repro.engine.pool"


# ----------------------------------------------------------------------
# Latency histogram edge cases (the Prometheus renderer's substrate)
# ----------------------------------------------------------------------
def test_histogram_percentile_edge_cases():
    histogram = LatencyHistogram(buckets=(0.01, 0.1, 1.0))
    assert histogram.percentile(0.5) is None  # empty

    histogram.observe(0.05)
    histogram.observe(0.07)
    histogram.observe(5.0)  # above the top bound
    assert histogram.percentile(0.0) == 0.1  # first non-empty bucket
    assert histogram.percentile(0.5) == 0.1
    assert histogram.percentile(1.0) == 5.0  # the true max, not +Inf
    assert histogram.percentile(0.99) == 5.0

    lone = LatencyHistogram(buckets=(0.01, 0.1, 1.0))
    lone.observe(0.5)
    assert lone.percentile(0.0) == 1.0  # bucket upper bound
    assert lone.percentile(1.0) == 0.5  # q=1 reports the observed max


def test_histogram_cumulative_buckets_and_sum():
    histogram = LatencyHistogram(buckets=(0.01, 0.1))
    for value in (0.005, 0.05, 0.07, 3.0):
        histogram.observe(value)
    buckets = histogram.cumulative_buckets()
    assert [b["le"] for b in buckets] == [0.01, 0.1, None]
    assert [b["count"] for b in buckets] == [1, 3, 4]
    assert histogram.sum_seconds == pytest.approx(0.005 + 0.05 + 0.07 + 3.0)
    payload = histogram.as_dict()
    assert payload["buckets"][-1]["le"] is None
    assert payload["buckets"][-1]["cumulative"] == 4
    cumulative = [b["cumulative"] for b in payload["buckets"]]
    assert cumulative == sorted(cumulative)


# ----------------------------------------------------------------------
# Prometheus exposition
# ----------------------------------------------------------------------
def test_render_parse_validate_round_trip():
    import asyncio

    async def drive():
        async with CountingService() as service:
            structure = Structure.from_relations(
                {"E": [(1, 2), (2, 3), (3, 1)]}
            )
            assert await service.count(PATH_QUERY, structure) == 3
            return render_prometheus(service.metrics())

    text = asyncio.run(drive())

    assert validate_exposition(text) == []
    families = parse_exposition(text)
    assert family_names() <= set(families)
    requests = {
        labels["endpoint"]: value
        for _, labels, value in families["repro_requests_total"]["samples"]
    }
    assert requests["count"] == 1
    histogram = families["repro_request_latency_seconds"]
    assert histogram["type"] == "histogram"
    count_buckets = [
        (labels["le"], value)
        for name, labels, value in histogram["samples"]
        if name.endswith("_bucket") and labels.get("endpoint") == "count"
    ]
    assert count_buckets[-1][0] == "+Inf"
    assert count_buckets[-1][1] == 1


def test_exposition_escapes_label_values():
    metrics = {
        "service": {
            "endpoints": {
                'we"ird\nname\\x': {
                    "requests": 1,
                    "completed": 1,
                    "rejected": 0,
                    "timeouts": 0,
                    "errors": 0,
                    "latency": {
                        "count": 1,
                        "sum_seconds": 0.5,
                        "buckets": [
                            {"le": 1.0, "count": 1, "cumulative": 1},
                            {"le": None, "count": 1, "cumulative": 1},
                        ],
                    },
                }
            }
        },
        "engine": {},
    }
    text = render_prometheus(metrics)
    assert validate_exposition(text) == []
    families = parse_exposition(text)
    (sample,) = families["repro_requests_total"]["samples"]
    assert sample[1]["endpoint"] == 'we"ird\nname\\x'


def test_validate_exposition_catches_violations():
    assert validate_exposition("garbage line without value") != []
    broken = (
        "# HELP x_seconds h\n"
        "# TYPE x_seconds histogram\n"
        'x_seconds_bucket{le="1"} 5\n'
        'x_seconds_bucket{le="+Inf"} 3\n'
        "x_seconds_sum 1.0\n"
        "x_seconds_count 3\n"
    )
    problems = validate_exposition(broken)
    assert any("not cumulative" in p for p in problems)
    no_inf = (
        "# HELP y_seconds h\n"
        "# TYPE y_seconds histogram\n"
        'y_seconds_bucket{le="1"} 5\n'
        "y_seconds_sum 1.0\n"
        "y_seconds_count 5\n"
    )
    assert any(
        "+Inf" in p for p in validate_exposition(no_inf)
    )


# ----------------------------------------------------------------------
# Live HTTP: request ids, debug endpoints, content negotiation
# ----------------------------------------------------------------------
def _raw_get(base: str, path: str, headers: dict | None = None):
    request = urllib.request.Request(f"{base}{path}", headers=headers or {})
    return urllib.request.urlopen(request, timeout=30)


def test_http_request_ids_traces_and_prometheus():
    get_tracer().set_enabled(True)
    server = CountingServer(service=CountingService(), port=0)
    with BackgroundServer(server) as background:
        host, port = background.server.address
        base = f"http://{host}:{port}"

        # Generated X-Request-Id on every response.
        payload = json.dumps(
            {
                "query": PATH_QUERY,
                "structure": {"relations": {"E": [[1, 2], [2, 3], [3, 1]]}},
            }
        ).encode()
        request = urllib.request.Request(
            f"{base}/count", data=payload,
            headers={"Content-Type": "application/json"},
        )
        with urllib.request.urlopen(request, timeout=30) as response:
            generated = response.headers["X-Request-Id"]
            assert json.load(response)["count"] == 3
        assert generated

        # A client-supplied id is echoed back verbatim.
        request = urllib.request.Request(
            f"{base}/count", data=payload,
            headers={
                "Content-Type": "application/json",
                "X-Request-Id": "client-chose-this",
            },
        )
        with urllib.request.urlopen(request, timeout=30) as response:
            assert response.headers["X-Request-Id"] == "client-chose-this"

        # The finished trace is listed and retrievable by id.
        with _raw_get(base, "/debug/traces") as response:
            listing = json.load(response)
        assert listing["tracing_enabled"] is True
        by_request_id = {
            t["request_id"]: t for t in listing["traces"]
        }
        assert "client-chose-this" in by_request_id
        trace_id = by_request_id["client-chose-this"]["trace_id"]
        with _raw_get(base, f"/debug/traces/{trace_id}") as response:
            tree = json.load(response)
        assert tree["trace_id"] == trace_id
        assert tree["root"]["name"] == "POST /count"
        stage_names = {c["name"] for c in tree["root"].get("children", ())}
        assert "admission.queue" in stage_names

        with pytest.raises(urllib.error.HTTPError) as excinfo:
            _raw_get(base, "/debug/traces/doesnotexist")
        assert excinfo.value.code == 404

        # Content negotiation: query param and Accept header both yield
        # valid exposition text; the default stays JSON.
        for suffix, headers in (
            ("?format=prometheus", None),
            ("", {"Accept": "text/plain"}),
        ):
            with _raw_get(base, f"/metrics{suffix}", headers) as response:
                assert response.headers["Content-Type"] == CONTENT_TYPE
                text = response.read().decode()
            assert validate_exposition(text) == []
        with _raw_get(base, "/metrics") as response:
            assert "application/json" in response.headers["Content-Type"]
            body = json.load(response)
        assert body["obs"]["tracing_enabled"] is True
        assert body["obs"]["traces_retained"] >= 2


class _ListHandler(logging.Handler):
    def __init__(self):
        super().__init__(level=logging.DEBUG)
        self.records: list[logging.LogRecord] = []

    def emit(self, record: logging.LogRecord) -> None:
        self.records.append(record)


def test_http_slow_query_log_dumps_trace():
    get_tracer().set_enabled(True)
    # A handler directly on the slowquery logger: `configure()` stops
    # propagation to the root logger, so capture must happen here.
    slow_logger = logging.getLogger("repro.serve.slowquery")
    handler = _ListHandler()
    slow_logger.addHandler(handler)
    old_level = slow_logger.level
    slow_logger.setLevel(logging.WARNING)
    try:
        config = ServiceConfig(slow_request_seconds=1e-9)
        server = CountingServer(
            service=CountingService(config=config), port=0
        )
        with BackgroundServer(server) as background:
            host, port = background.server.address
            base = f"http://{host}:{port}"
            payload = json.dumps(
                {
                    "query": PATH_QUERY,
                    "structure": {
                        "relations": {"E": [[1, 2], [2, 3], [3, 1]]}
                    },
                }
            ).encode()
            request = urllib.request.Request(
                f"{base}/count", data=payload,
                headers={"Content-Type": "application/json"},
            )
            with urllib.request.urlopen(request, timeout=30) as response:
                assert json.load(response)["count"] == 3
    finally:
        slow_logger.removeHandler(handler)
        slow_logger.setLevel(old_level)

    assert handler.records
    record = handler.records[0]
    assert record.trace["root"]["name"] == "POST /count"
    assert record.threshold_seconds == 1e-9
    assert record.request_id
