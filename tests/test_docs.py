"""Documentation freshness: the API reference must match the server.

The same check CI runs (``tools/check_docs_freshness.py``), executed as
part of the tier-1 suite so route/docs drift fails locally before it
fails in CI.
"""

from __future__ import annotations

import sys
from pathlib import Path

REPO_ROOT = Path(__file__).resolve().parent.parent
sys.path.insert(0, str(REPO_ROOT / "tools"))

import check_docs_freshness  # noqa: E402


def test_http_api_docs_match_route_table():
    problems = check_docs_freshness.check()
    assert not problems, "\n".join(problems)


def test_checker_detects_missing_and_stale_routes(tmp_path):
    stale = tmp_path / "http_api.md"
    stale.write_text("### `POST /count`\n\n### `GET /bygone`\n")
    problems = check_docs_freshness.check(stale)
    assert any("/bygone" in p for p in problems)  # stale doc heading
    assert any("/structures" in p for p in problems)  # undocumented route


def test_cluster_docs_match_frame_registry():
    problems = check_docs_freshness.check_cluster()
    assert not problems, "\n".join(problems)


def test_checker_detects_missing_and_stale_frame_types(tmp_path):
    stale = tmp_path / "cluster.md"
    stale.write_text("### `register`\n\n### `bygone_frame`\n")
    problems = check_docs_freshness.check_cluster(stale)
    assert any("bygone_frame" in p for p in problems)  # stale heading
    assert any("'execute'" in p for p in problems)  # undocumented type


def test_docs_pages_exist_and_crosslink():
    docs = REPO_ROOT / "docs"
    for page in ("architecture.md", "http_api.md", "operations.md",
                 "cluster.md"):
        assert (docs / page).exists(), f"docs/{page} is missing"
    readme = (REPO_ROOT / "README.md").read_text(encoding="utf-8")
    for page in ("docs/architecture.md", "docs/http_api.md",
                 "docs/operations.md", "docs/cluster.md"):
        assert page in readme, f"README does not link {page}"
