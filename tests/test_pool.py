"""Worker pools, structure fingerprints, and parallel-path error handling.

The long-lived :class:`~repro.engine.pool.WorkerPool` must (a) keep
execution contexts resident across calls, keyed by structure
fingerprint, (b) propagate exceptions raised inside workers to the
caller (never mask them with a silent sequential re-run), and (c) leave
the sequential fallback in place for genuine pool-*setup* failures such
as unpicklable jobs.
"""

import pytest

from repro.engine import (
    Engine,
    WorkerPool,
    WorkerTaskError,
    compile_plan,
    count_many,
    execute,
    execute_sharded,
)
from repro.structures.random_gen import random_cluster_graph, random_graph
from repro.structures.sharding import shard_structure
from repro.structures.structure import Structure
from repro.workloads.generators import path_query, union_of_paths_query


# ----------------------------------------------------------------------
# Structure fingerprints
# ----------------------------------------------------------------------
def test_fingerprint_equal_for_equal_structures():
    a = random_cluster_graph(3, 4, 0.5, seed=5)
    b = random_cluster_graph(3, 4, 0.5, seed=5)
    assert a is not b and a == b
    assert a.fingerprint() == b.fingerprint()


def test_fingerprint_distinguishes_content():
    base = Structure.from_relations({"E": [(1, 2), (2, 3)]})
    different_tuples = Structure.from_relations({"E": [(1, 2), (3, 2)]})
    different_universe = Structure.from_relations(
        {"E": [(1, 2), (2, 3)]}, universe=[1, 2, 3, 4]
    )
    prints = {
        base.fingerprint(),
        different_tuples.fingerprint(),
        different_universe.fingerprint(),
    }
    assert len(prints) == 3


def test_fingerprint_shape_and_caching():
    structure = Structure.from_relations({"E": [(1, 2)], "R": [(2, 1)]})
    size, counts, digest = structure.fingerprint()
    assert size == 2
    assert counts == (("E", 2, 1), ("R", 2, 1))
    assert isinstance(digest, str) and len(digest) == 32
    assert structure.fingerprint() is structure.fingerprint()


# ----------------------------------------------------------------------
# WorkerPool lifecycle
# ----------------------------------------------------------------------
def test_worker_pool_starts_lazily_and_closes():
    pool = WorkerPool(processes=1)
    assert not pool.started
    with pool:
        pass  # never used: no processes were ever forked
    assert not pool.started


def test_worker_pool_rejects_nonpositive_processes():
    from repro.exceptions import ReproError

    with pytest.raises(ReproError):
        WorkerPool(processes=0)


def test_engine_pool_is_lazy_until_parallel_call():
    with Engine() as engine:
        structure = random_graph(4, 0.5, seed=0)
        engine.count("E(x, y)", structure)
        assert not engine.pool.started


# ----------------------------------------------------------------------
# Worker-resident context caches
# ----------------------------------------------------------------------
def test_repeated_count_sharded_hits_worker_contexts():
    structure = random_cluster_graph(6, 4, 0.5, seed=3)
    query = path_query(2, quantify_interior=True)
    with Engine() as engine:
        first = engine.count_sharded(
            query, structure, shard_count=6, parallel=True
        )
        assert engine.stats().worker_context_hits == 0
        assert engine.stats().worker_context_misses > 0
        second = engine.count_sharded(
            query, structure, shard_count=6, parallel=True
        )
        assert first == second == execute(compile_plan(query), structure)
        assert engine.stats().worker_context_hits > 0


def test_repeated_parallel_count_many_hits_worker_contexts():
    structures = [random_graph(5, 0.4, seed=s) for s in range(3)]
    queries = [path_query(2, quantify_interior=True), union_of_paths_query([1, 2])]
    with Engine() as engine:
        first = engine.count_many(queries, structures, parallel=True)
        second = engine.count_many(queries, structures, parallel=True)
        assert first == second
        assert engine.stats().worker_context_hits > 0
        assert engine.stats().as_dict()["worker_context_hits"] > 0


def test_explicit_processes_overrides_the_resident_pool():
    # A per-call processes= override must be honored (it runs a
    # throwaway pool of that size), not silently ignored in favor of
    # the engine's resident pool.
    structure = random_cluster_graph(4, 4, 0.5, seed=6)
    query = path_query(2, quantify_interior=True)
    with Engine(processes=2) as engine:
        expected = engine.count(query, structure)
        overridden = engine.count_sharded(
            query, structure, shard_count=4, parallel=True, processes=1
        )
        assert overridden == expected
        assert not engine.pool.started  # the override bypassed it


def test_transient_pools_still_agree_with_sequential():
    structure = random_cluster_graph(5, 4, 0.4, seed=8)
    query = path_query(2, quantify_interior=True)
    plan = compile_plan(query)
    sharded = shard_structure(structure, 5)
    assert execute_sharded(plan, sharded, parallel=True) == execute_sharded(
        plan, sharded, parallel=False
    )


# ----------------------------------------------------------------------
# Worker errors propagate; setup errors fall back
# ----------------------------------------------------------------------
def test_worker_value_error_propagates_from_count_many(monkeypatch):
    """A counting bug inside a pool worker must reach the caller.

    The patch lands before the pool forks, so the workers inherit the
    exploding ``execute``; the sequential path would raise the same
    way, and the parallel path must not silently demote to it.
    """
    import repro.engine.executor as executor_module

    def explode(plan, structure, context=None):
        raise ValueError("boom inside worker")

    monkeypatch.setattr(executor_module, "execute", explode)
    structures = [random_graph(4, 0.5, seed=s) for s in range(3)]
    with pytest.raises(ValueError, match="boom inside worker"):
        count_many(["E(x, y)"], structures, parallel=True)


def test_worker_error_propagates_from_execute_sharded(monkeypatch):
    import repro.algorithms.fpt_counting as fpt_module

    def explode(plan, structure, context=None):
        raise ValueError("shard worker boom")

    monkeypatch.setattr(fpt_module, "execute_pp_plan", explode)
    structure = random_cluster_graph(4, 3, 0.6, seed=2)
    plan = compile_plan(path_query(2, quantify_interior=True))
    with pytest.raises(ValueError, match="shard worker boom"):
        execute_sharded(plan, shard_structure(structure, 4), parallel=True)


def test_worker_task_error_carries_original():
    error = WorkerTaskError(ValueError("original"))
    assert isinstance(error.original, ValueError)
    assert "ValueError" in str(error)


def _unpicklable_structure() -> Structure:
    # Lambdas are hashable universe elements but cannot be pickled, so
    # shipping this structure to a pool fails at job-submission time --
    # a setup failure, which is exactly what the fallback is for.  Two
    # disjoint edges give two data components, hence two shard jobs.
    return Structure.from_relations(
        {"E": [(lambda: 0, lambda: 1), (lambda: 2, lambda: 3)]}
    )


def test_unpicklable_structure_falls_back_to_sequential():
    bad = _unpicklable_structure()
    grid = count_many(
        ["E(x, y)", "exists z. (E(x, z) & E(z, y))"], [bad], parallel=True
    )
    assert grid == [[2], [0]]


def test_unpicklable_shards_fall_back_to_sequential():
    bad = _unpicklable_structure()
    plan = compile_plan("E(x, y)")
    sharded = shard_structure(bad, 2, strategy="balanced")
    assert len(sharded.non_empty_shards()) == 2
    # Force the parallel path; submission fails to pickle the shard
    # jobs and the sequential fallback must still produce the count.
    assert execute_sharded(plan, sharded, parallel=True) == execute(plan, bad)


# ----------------------------------------------------------------------
# Broadcast deadlock regression: a worker dying mid-broadcast
# ----------------------------------------------------------------------
def _die_holding_broadcast_task(job):
    """Whichever worker wins the sentinel mkdir SIGKILLs itself *after*
    taking its broadcast job but *before* reaching the barrier -- the
    exact window where ``multiprocessing.Pool`` respawns the process
    but never re-queues the taken job, so an untimed parent-side wait
    would hang forever."""
    import os
    import signal

    from repro.engine import pool as pool_module

    sentinel, barrier, timeout = job
    try:
        os.mkdir(sentinel)
    except FileExistsError:
        pass
    else:
        os.kill(os.getpid(), signal.SIGKILL)
    pool_module._await_broadcast_barrier(barrier, timeout)
    return pool_module._TaskOk(True)


def test_broadcast_worker_death_times_out_instead_of_deadlocking(tmp_path):
    import time

    from repro.engine.pool import pin_structures_task, pinned_fingerprints_task

    graph = random_graph(10, 0.5, seed=3)
    with WorkerPool(processes=2) as pool:
        # Instance-level overrides: keep the regression fast without
        # touching the class defaults other tests rely on.
        pool.BROADCAST_BARRIER_TIMEOUT = 3.0
        pool.BROADCAST_RESULT_GRACE = 2.0
        # Recorded parent-side while the pool is cold; the restarted
        # pool's initializer must rebuild exactly this pin set.
        pool.pin_structures([graph])
        started = time.monotonic()
        confirmations = pool.broadcast(
            _die_holding_broadcast_task, str(tmp_path / "suicide-sentinel")
        )
        elapsed = time.monotonic() - started
        # The wedged broadcast degrades (zero confirmations) instead of
        # blocking forever; well under the watchdog's 120s budget.
        assert confirmations == []
        assert pool.broadcast_timeouts == 1
        assert elapsed < 30.0
        # The pool restarted and is fully usable: a fresh broadcast
        # reaches every worker, and the initializer rebuilt the pins.
        rebuilt = pool.broadcast(pinned_fingerprints_task, None)
        assert len(rebuilt) == 2
        for worker_pins in rebuilt:
            assert graph.fingerprint() in worker_pins
        assert pool.broadcast(pin_structures_task, (graph,)) == [1, 1]
