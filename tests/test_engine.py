"""Engine-vs-seed equivalence and engine API behavior.

Warm-cache engine counts must be bit-identical to the baseline
strategies; the batch and parallel paths must agree with the scalar
path; and the rerouted ``count_answers`` must hit the default engine's
plan cache.
"""

import pytest

from repro.core.counting import count_answers
from repro.engine import Engine, compile_plan, count_many, execute
from repro.engine.api import default_engine, reset_default_engine, set_default_engine
from repro.structures.random_gen import random_graph
from repro.workloads.generators import (
    example_5_21_query,
    random_conjunctive_query,
    random_ucq,
)
from repro.workloads.scenarios import movie_database, social_network, triple_store


def scenario_cases():
    for scenario in (
        social_network(people=10, seed=0),
        triple_store(papers=8, authors=6, seed=1),
        movie_database(movies=6, actors=8, seed=2),
    ):
        structure = scenario.structure()
        for name, query in scenario.queries.items():
            yield pytest.param(query.to_ep(), structure, id=f"{scenario.name}:{name}")


@pytest.mark.parametrize("query,structure", scenario_cases())
def test_warm_engine_matches_naive_on_scenarios(query, structure):
    engine = Engine()
    cold = engine.count(query, structure)
    warm = engine.count(query, structure)
    naive = count_answers(query, structure, strategy="naive", engine=None)
    assert cold == warm == naive
    assert engine.stats().plan_hits >= 1


@pytest.mark.parametrize("seed", range(5))
def test_warm_engine_matches_naive_on_random_queries(seed):
    engine = Engine()
    structure = random_graph(5, 0.4, seed=seed)
    for query in (
        random_conjunctive_query(4, 3, liberal_count=2, seed=seed),
        random_ucq(2, 4, 3, liberal_count=2, seed=seed),
    ):
        engine.count(query, structure)  # compile
        warm = engine.count(query, structure)
        assert warm == count_answers(query, structure, strategy="naive", engine=None)


def test_count_many_matches_scalar_counts():
    queries = [
        "E(x, y)",
        "exists z. (E(x, z) & E(z, y))",
        random_ucq(2, 4, 3, liberal_count=2, seed=3),
    ]
    structures = [random_graph(6, 0.3, seed=s) for s in range(4)]
    engine = Engine()
    grid = engine.count_many(queries, structures, parallel=False)
    for i, query in enumerate(queries):
        for j, structure in enumerate(structures):
            assert grid[i][j] == engine.count(query, structure)


def test_count_many_parallel_matches_sequential():
    queries = ["E(x, y)", "exists z. (E(x, z) & E(z, y))"]
    structures = [random_graph(5, 0.4, seed=s) for s in range(3)]
    sequential = count_many(queries, structures, parallel=False)
    parallel = count_many(queries, structures, parallel=True)
    assert sequential == parallel


def test_compiled_plan_is_reusable_across_structures():
    plan = compile_plan(example_5_21_query())
    for seed in range(4):
        structure = random_graph(6, 0.35, seed=seed)
        assert execute(plan, structure) == count_answers(
            example_5_21_query(), structure, strategy="naive", engine=None
        )


def test_count_answers_routes_through_default_engine():
    fresh = Engine()
    previous = set_default_engine(fresh)
    try:
        structure = random_graph(5, 0.4, seed=11)
        first = count_answers("exists z. (E(x, z) & E(z, y))", structure)
        second = count_answers("exists z. (E(x, z) & E(z, y))", structure)
        assert first == second
        assert fresh.stats().plan_hits >= 1
        assert default_engine() is fresh
    finally:
        set_default_engine(previous)


def test_reset_default_engine_creates_a_fresh_one():
    first = default_engine()
    reset_default_engine()
    second = default_engine()
    assert second is not first


def test_engine_stats_track_time_and_calls():
    engine = Engine()
    structure = random_graph(5, 0.4, seed=4)
    engine.count("E(x, y)", structure)
    stats = engine.stats()
    assert stats.count_calls == 1
    assert stats.compile_seconds > 0
    assert stats.execute_seconds > 0
    assert stats.strategies == {"auto": 1}
