"""Shared test harness configuration.

The one piece of machinery here is a per-test watchdog: a stuck worker
pool shutdown (the exact bug class this suite guards against) used to
hang the whole pytest run forever, which on CI reads as a 6-hour
timeout instead of a named failing test.  Every test gets
``REPRO_TEST_TIMEOUT`` seconds (default 120; ``0`` disables); on expiry
the watchdog dumps every thread's traceback and hard-exits, so the log
names the offending test and shows where it was stuck.

A watchdog *thread* (not ``SIGALRM``) on purpose: forked pool workers
inherit the parent's interval timers, so an armed alarm could fire
inside a worker and kill it spuriously; threads do not survive fork.
"""

from __future__ import annotations

import faulthandler
import os
import sys
import threading

import pytest

DEFAULT_TEST_TIMEOUT_SECONDS = 120.0


def _test_timeout_seconds() -> float:
    try:
        return float(
            os.environ.get("REPRO_TEST_TIMEOUT", DEFAULT_TEST_TIMEOUT_SECONDS)
        )
    except ValueError:
        return DEFAULT_TEST_TIMEOUT_SECONDS


@pytest.hookimpl(hookwrapper=True)
def pytest_runtest_protocol(item, nextitem):
    seconds = _test_timeout_seconds()
    if seconds <= 0:
        yield
        return

    def _abort() -> None:  # pragma: no cover - only fires on a hang
        sys.stderr.write(
            f"\n\nFATAL: test {item.nodeid} still running after "
            f"{seconds:.0f}s; dumping all thread stacks and aborting "
            "the run (set REPRO_TEST_TIMEOUT to adjust).\n"
        )
        sys.stderr.flush()
        faulthandler.dump_traceback(file=sys.stderr)
        sys.stderr.flush()
        os._exit(70)  # EX_SOFTWARE: distinguishable from pytest's own codes

    watchdog = threading.Timer(seconds, _abort)
    watchdog.daemon = True
    watchdog.start()
    try:
        yield
    finally:
        watchdog.cancel()
