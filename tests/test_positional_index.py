"""The shared positional index and index-backed homomorphism search."""

from repro.structures.homomorphism import (
    count_extendable_assignments,
    count_homomorphisms,
    enumerate_homomorphisms,
    has_homomorphism,
    is_homomorphism,
)
from repro.logic.signatures import RelationSymbol, Signature
from repro.structures.indexes import PositionalIndex
from repro.structures.random_gen import random_graph, random_structure
from repro.structures.structure import Structure
from repro.workloads.generators import path_query


def test_matching_returns_tuples_by_position():
    structure = Structure.from_relations({"E": [(1, 2), (1, 3), (2, 3)]})
    index = PositionalIndex(structure)
    assert index.matching("E", 0, 1) == frozenset({(1, 2), (1, 3)})
    assert index.matching("E", 1, 3) == frozenset({(1, 3), (2, 3)})
    assert index.matching("E", 1, 1) == frozenset()
    assert index.tuples("E") == structure.relation("E")
    assert index.tuples("missing") == frozenset()


def test_has_compatible_tuple_partial_rows():
    structure = Structure.from_relations({"R": [(1, 2, 3), (1, 5, 3), (4, 2, 6)]})
    index = PositionalIndex(structure)
    assert index.has_compatible_tuple("R", {})
    assert index.has_compatible_tuple("R", {0: 1})
    assert index.has_compatible_tuple("R", {0: 1, 2: 3})
    assert not index.has_compatible_tuple("R", {0: 4, 2: 3})
    assert not index.has_compatible_tuple("R", {1: 9})
    assert not index.has_compatible_tuple("missing", {})


def test_homomorphism_counts_unchanged_by_shared_index():
    for seed in range(5):
        source = random_graph(4, 0.5, seed=seed)
        target = random_graph(5, 0.5, seed=seed + 10)
        index = PositionalIndex(target)
        without = count_homomorphisms(source, target)
        with_shared = count_homomorphisms(source, target, target_index=index)
        assert without == with_shared
        assert has_homomorphism(source, target) == has_homomorphism(
            source, target, target_index=index
        )


def test_enumerated_homomorphisms_are_homomorphisms():
    source = random_graph(3, 0.7, seed=3)
    target = random_graph(4, 0.6, seed=4)
    for mapping in enumerate_homomorphisms(source, target):
        assert is_homomorphism(mapping, source, target)


def test_extendable_assignments_shared_index():
    query = path_query(3, quantify_interior=True)
    for seed in range(4):
        target = random_graph(6, 0.3, seed=seed)
        index = PositionalIndex(target)
        liberal = sorted(query.liberal, key=lambda v: v.name)
        assert count_extendable_assignments(
            query.structure, target, liberal
        ) == count_extendable_assignments(
            query.structure, target, liberal, target_index=index
        )


def test_higher_arity_structures():
    signature = Signature([RelationSymbol("T", 3)])
    for seed in range(3):
        source = random_structure(signature, size=3, tuple_probability=0.15, seed=seed)
        target = random_structure(signature, size=4, tuple_probability=0.2, seed=seed + 5)
        index = PositionalIndex(target)
        assert count_homomorphisms(source, target) == count_homomorphisms(
            source, target, target_index=index
        )
