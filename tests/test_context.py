"""ExecutionContext behavior: semijoin elimination, memoization, reuse.

The semijoin evaluator must agree exactly with the backtracking search
on every ∃-component; the boundary-relation memo must be shared across
the inclusion-exclusion terms of an ``ep-plus`` plan; and the batch
paths must build at most one positional index per distinct structure.
"""

import pytest

from repro.algorithms.decomposition import TreeDecomposition
from repro.algorithms.fpt_counting import (
    compile_pp_plan,
    count_pp_answers_fpt,
    exists_components,
)
from repro.core.counting import count_answers
from repro.engine import Engine, compile_plan, count_many, execute
from repro.engine.context import ExecutionContext
from repro.exceptions import ReproError
from repro.structures import indexes as indexes_module
from repro.structures.random_gen import random_cluster_graph, random_graph
from repro.workloads.generators import (
    hidden_clique_query,
    path_query,
    random_conjunctive_query,
    star_query,
    union_of_paths_query,
)


# ----------------------------------------------------------------------
# Semijoin vs backtracking
# ----------------------------------------------------------------------
def component_cases():
    queries = [
        path_query(3, quantify_interior=True),
        path_query(5, quantify_interior=True),
        star_query(3, quantify_leaves=True),
        hidden_clique_query(3),  # cyclic interior: semijoin must decline
    ]
    for seed in range(6):
        queries.append(random_conjunctive_query(5, 4, liberal_count=2, seed=seed))
    for q, query in enumerate(queries):
        for component in exists_components(query):
            yield pytest.param(component, id=f"q{q}:b{len(component.boundary)}")


@pytest.mark.parametrize("component", component_cases())
@pytest.mark.parametrize("seed", [0, 3])
def test_semijoin_matches_backtracking_boundary_relations(component, seed):
    structure = random_graph(7, 0.35, seed=seed)
    with_semijoin = ExecutionContext(structure, semijoin=True)
    without = ExecutionContext(structure, semijoin=False)
    assert with_semijoin.boundary_relation(component) == without.boundary_relation(
        component
    )


def test_semijoin_is_actually_used_on_acyclic_components():
    structure = random_graph(8, 0.3, seed=2)
    context = ExecutionContext(structure)
    (component,) = exists_components(path_query(3, quantify_interior=True))
    context.boundary_relation(component)
    assert context.stats.semijoin_eliminations == 1
    assert context.stats.backtracking_eliminations == 0


def test_cyclic_interior_falls_back_to_backtracking():
    structure = random_graph(8, 0.4, seed=2)
    context = ExecutionContext(structure)
    (component,) = exists_components(hidden_clique_query(3))
    context.boundary_relation(component)
    assert context.stats.backtracking_eliminations == 1


def test_wide_boundary_falls_back_to_backtracking():
    structure = random_graph(6, 0.4, seed=4)
    context = ExecutionContext(structure, semijoin_max_boundary=0)
    (component,) = exists_components(path_query(2, quantify_interior=True))
    context.boundary_relation(component)
    assert context.stats.semijoin_eliminations == 0
    assert context.stats.backtracking_eliminations == 1


# ----------------------------------------------------------------------
# Memoization
# ----------------------------------------------------------------------
def test_boundary_memo_is_shared_across_ep_plus_terms():
    # phi+ of a union of paths has terms phi1, phi2, phi1&phi2; the
    # conjunction's ∃-components are exactly phi1's and phi2's, so one
    # execute sees 2 misses and 2 memo hits.
    query = union_of_paths_query([2, 3])
    plan = compile_plan(query)
    assert plan.kind == "ep-plus"
    assert len(plan.terms) == 3
    structure = random_graph(7, 0.3, seed=5)
    context = ExecutionContext(structure)
    execute(plan, structure, context)
    assert context.stats.boundary_misses == 2
    assert context.stats.boundary_hits == 2


def test_memo_disabled_recomputes_per_term():
    query = union_of_paths_query([2, 3])
    plan = compile_plan(query)
    structure = random_graph(7, 0.3, seed=5)
    memoized = ExecutionContext(structure, memoize=True)
    unmemoized = ExecutionContext(structure, memoize=False)
    assert execute(plan, structure, memoized) == execute(plan, structure, unmemoized)
    assert unmemoized.stats.boundary_hits == 0
    assert unmemoized.stats.boundary_misses == 4


def test_repeated_execution_hits_the_memo_via_engine():
    engine = Engine()
    structure = random_graph(7, 0.3, seed=6)
    query = "exists z. (E(x, z) & E(z, y))"
    first = engine.count(query, structure)
    first_misses = engine.stats().boundary_memo_misses
    assert engine.count(query, structure) == first
    stats = engine.stats()
    # The repeat is served by the context's per-(plan, structure) count
    # memo: no boundary relation is recomputed *or even looked up*
    # again -- the whole execution is a dictionary hit.
    assert stats.boundary_memo_misses == first_misses
    assert stats.boundary_memo_hits == 0
    # A context bypassing the memo still recomputes (and then hits the
    # boundary memo), so the shortcut is the memo's doing, not luck.
    context = ExecutionContext(structure)
    plan = engine.compile(query)
    assert execute(plan, structure, context) == first
    context._count_memo.clear()
    assert execute(plan, structure, context) == first
    assert context.stats.boundary_hits >= 1


# ----------------------------------------------------------------------
# Index-build regression (one context per distinct structure)
# ----------------------------------------------------------------------
def test_count_many_builds_at_most_one_index_per_distinct_structure(monkeypatch):
    builds = []
    original = indexes_module.PositionalIndex.__init__

    def counting_init(self, structure):
        builds.append(structure)
        original(self, structure)

    monkeypatch.setattr(indexes_module.PositionalIndex, "__init__", counting_init)
    first = random_graph(6, 0.3, seed=0)
    second = random_graph(6, 0.3, seed=1)
    structures = [first, second, first, second, first]
    # Precompile so the (query-side) homomorphism searches of core
    # computation don't contribute index builds of formula structures.
    plans = [
        compile_plan(q)
        for q in (
            "exists z. (E(x, z) & E(z, y))",
            "exists z w. (E(x, z) & E(z, w) & E(w, y))",
            "E(x, y)",
        )
    ]
    builds.clear()
    grid = count_many(plans, structures, parallel=False)
    data_builds = [s for s in builds if s in (first, second)]
    assert builds == data_builds  # nothing but the data structures
    assert len(data_builds) == 2
    engine = Engine()
    queries = [
        "exists z. (E(x, z) & E(z, y))",
        "exists z w. (E(x, z) & E(z, w) & E(w, y))",
        "E(x, y)",
    ]
    assert engine.count_many(queries, structures, parallel=False) == grid
    # The engine's own counter tracks context-built (data) indexes only.
    assert engine.stats().index_builds == 2


# ----------------------------------------------------------------------
# Context-aware count_answers and the decomposition-override fix
# ----------------------------------------------------------------------
def test_count_plan_memoizes_per_base_formula(monkeypatch):
    import repro.algorithms.fpt_counting as fpt_module

    structure = random_graph(6, 0.4, seed=5)
    pp = path_query(2, quantify_interior=True)
    pp_plan = compile_pp_plan(pp)
    context = ExecutionContext(structure)
    expected = fpt_module.execute_pp_plan(pp_plan, structure, context)

    calls = []
    real = fpt_module.execute_pp_plan

    def counting_execute(plan, target, ctx=None):
        calls.append(plan)
        return real(plan, target, ctx)

    monkeypatch.setattr(fpt_module, "execute_pp_plan", counting_execute)
    assert context.count_plan(pp_plan) == expected
    assert context.count_plan(pp_plan) == expected  # memo hit
    assert len(calls) == 1

    # With memoization off the execution runs every time.
    bare = ExecutionContext(structure, memoize=False)
    assert bare.count_plan(pp_plan) == expected
    assert bare.count_plan(pp_plan) == expected
    assert len(calls) == 3

    context.clear()
    assert context.count_plan(pp_plan) == expected
    assert len(calls) == 4


def test_count_answers_accepts_an_explicit_context():
    structure = random_graph(6, 0.35, seed=8)
    context = ExecutionContext(structure)
    query = "exists z. (E(x, z) & E(z, y))"
    through_context = count_answers(query, structure, context=context)
    assert through_context == count_answers(query, structure)
    assert context.stats.boundary_misses == 1
    # Re-counting through the same context is a count-memo hit: the
    # boundary relation is not recomputed or even consulted again.
    assert count_answers(query, structure, context=context) == through_context
    assert context.stats.boundary_misses == 1
    assert context.stats.boundary_hits == 0


def test_count_answers_rejects_a_mismatched_context():
    context = ExecutionContext(random_graph(5, 0.3, seed=0))
    with pytest.raises(ReproError):
        count_answers("E(x, y)", random_graph(5, 0.3, seed=1), context=context)


def test_count_pp_answers_fpt_decomposition_override_uses_replace():
    formula = path_query(3)  # all-liberal path: contract graph is the path
    structure = random_graph(5, 0.4, seed=3)
    expected = count_answers(formula, structure, strategy="naive", engine=None)
    # A valid single-bag decomposition of different width than the
    # compiled plan's: the override (and its width) must be honored.
    override = TreeDecomposition({0: list(formula.liberal)})
    assert override.width != compile_pp_plan(formula).width
    assert count_pp_answers_fpt(formula, structure, decomposition=override) == expected
