"""The distributed execution cluster: protocol, placement, agreement.

Three layers of coverage:

* unit tests for the wire codec (`repro.cluster.proto`), the fault
  seam (`repro.cluster.faults`), and the placement map
  (`repro.cluster.placement`) -- no sockets, no subprocesses;
* coordinator/worker integration over real TCP with worker
  subprocesses (`python -m repro.cluster.worker`);
* the randomized agreement suite: every generator query counted
  through the local ``WorkerPool``, a single-worker cluster, and a
  3-worker cluster must be bit-identical across all encoding
  backends.  The chaos/fault scenarios live in
  ``test_cluster_chaos.py``.
"""

from __future__ import annotations

import asyncio
import os
import subprocess
import sys
import time
from pathlib import Path

import pytest

from repro.cluster import (
    ClusterCoordinator,
    FaultInjector,
    PlacementMap,
    load_fault_plan,
)
from repro.cluster import proto
from repro.cluster.faults import FaultPlan
from repro.engine import Engine
from repro.exceptions import ReproError
from repro.structures.encoding import numpy_available
from repro.structures.random_gen import random_cluster_graph
from repro.workloads.generators import (
    cycle_query,
    example_4_2_query,
    example_5_21_query,
    path_query,
    random_conjunctive_query,
    random_ucq,
    star_query,
)

REPO_ROOT = Path(__file__).resolve().parent.parent
SRC_DIR = str(REPO_ROOT / "src")

BACKENDS = ("object", "array") + (("numpy",) if numpy_available() else ())


# ----------------------------------------------------------------------
# Worker subprocess helpers (shared with the chaos suite)
# ----------------------------------------------------------------------
def worker_env(faults: str | None = None) -> dict:
    env = dict(os.environ)
    env["PYTHONPATH"] = SRC_DIR + (
        os.pathsep + env["PYTHONPATH"] if env.get("PYTHONPATH") else ""
    )
    if faults is not None:
        env["REPRO_FAULTS"] = faults
    else:
        env.pop("REPRO_FAULTS", None)
    return env


def spawn_workers(
    coordinator: ClusterCoordinator,
    count: int,
    capacity: int = 2,
    faults: str | None = None,
    name_prefix: str = "w",
) -> list:
    host, port = coordinator.address
    return [
        subprocess.Popen(
            [
                sys.executable,
                "-m",
                "repro.cluster.worker",
                "--connect",
                f"{host}:{port}",
                "--capacity",
                str(capacity),
                "--name",
                f"{name_prefix}{index}",
            ],
            env=worker_env(faults),
        )
        for index in range(count)
    ]


def reap(processes) -> None:
    for process in processes:
        if process.poll() is None:
            process.terminate()
    for process in processes:
        try:
            process.wait(timeout=15)
        except subprocess.TimeoutExpired:  # pragma: no cover - cleanup
            process.kill()
            process.wait(timeout=15)


# ----------------------------------------------------------------------
# Wire protocol
# ----------------------------------------------------------------------
def _read_one(data: bytes):
    async def run():
        reader = asyncio.StreamReader()
        reader.feed_data(data)
        reader.feed_eof()
        return await proto.read_frame(reader)

    return asyncio.run(run())


def test_frame_roundtrip_header_and_body():
    header = {"type": "execute", "job_id": "j7"}
    body = proto.pickle_body(("units", (("E",), "fp"), None, "array"))
    frame = _read_one(proto.encode_frame(header, body))
    assert frame == (header, body)
    assert proto.unpickle_body(body) == ("units", (("E",), "fp"), None, "array")
    assert proto.unpickle_body(b"") is None


def test_clean_eof_between_frames_is_none():
    assert _read_one(b"") is None


def test_torn_frame_raises_incomplete_read():
    whole = proto.encode_frame({"type": "heartbeat", "worker_id": "w1"})
    with pytest.raises(asyncio.IncompleteReadError):
        _read_one(whole[: len(whole) - 1])


def test_encode_rejects_unknown_frame_type():
    with pytest.raises(proto.ProtocolError):
        proto.encode_frame({"type": "teleport"})
    with pytest.raises(proto.ProtocolError):
        proto.encode_frame({})


def test_read_rejects_malformed_headers():
    import struct

    bad_json = struct.pack("!II", 7, 0) + b"notjson"
    with pytest.raises(proto.ProtocolError):
        _read_one(bad_json)
    bad_type = b'{"type":"warp"}'
    framed = struct.pack("!II", len(bad_type), 0) + bad_type
    with pytest.raises(proto.ProtocolError):
        _read_one(framed)


def test_read_rejects_oversized_frames():
    import struct

    huge = struct.pack("!II", 2**31, 2**31)
    with pytest.raises(proto.ProtocolError):
        _read_one(huge)


def test_unpicklable_body_is_a_protocol_error():
    with pytest.raises(proto.ProtocolError):
        proto.pickle_body(lambda: None)


# ----------------------------------------------------------------------
# Fault plans and injection
# ----------------------------------------------------------------------
def test_fault_plan_parsing_roundtrip():
    plan = load_fault_plan("drop_frame=0.25, delay_heartbeat=0.5,seed=7")
    assert plan == FaultPlan(drop_frame=0.25, delay_heartbeat=0.5, seed=7)
    assert plan.active
    assert load_fault_plan(plan.as_env()) == plan
    assert not load_fault_plan("").active
    assert not FaultPlan().active


def test_fault_plan_reads_environment(monkeypatch):
    monkeypatch.setenv("REPRO_FAULTS", "delay_execute=0.75")
    assert load_fault_plan() == FaultPlan(delay_execute=0.75)
    monkeypatch.delenv("REPRO_FAULTS")
    assert load_fault_plan() == FaultPlan()


@pytest.mark.parametrize(
    "spec",
    [
        "drop_frame=2.0",  # probability out of range
        "drop_frame=nope",  # not a float
        "delay_execute=-1",  # negative delay
        "teleport=0.5",  # unknown key
        "drop_frame",  # not key=value
    ],
)
def test_fault_plan_rejects_bad_specs(spec):
    with pytest.raises(ReproError):
        load_fault_plan(spec)


def test_injector_is_deterministic_and_counts():
    plan = load_fault_plan("drop_frame=0.5,seed=42")
    first = FaultInjector(plan)
    second = FaultInjector(plan)
    decisions = [first.should_drop_frame("result") for _ in range(50)]
    assert decisions == [second.should_drop_frame("result") for _ in range(50)]
    assert 0 < sum(decisions) < 50
    assert first.counters["frames_dropped"] == sum(decisions)


def test_registration_frames_are_never_dropped():
    injector = FaultInjector(load_fault_plan("drop_frame=1.0,seed=1"))
    for frame_type in ("register", "registered", "register_refused"):
        assert not injector.should_drop_frame(frame_type)
    assert injector.should_drop_frame("heartbeat")
    assert injector.counters["frames_dropped"] == 1


def test_execute_delay_is_fixed_not_probabilistic():
    injector = FaultInjector(load_fault_plan("delay_execute=0.25"))
    assert injector.execute_delay() == 0.25
    assert injector.execute_delay() == 0.25
    assert injector.counters["executions_delayed"] == 2
    assert FaultInjector(FaultPlan()).execute_delay() == 0.0


def test_heartbeat_delay_is_one_full_interval():
    injector = FaultInjector(load_fault_plan("delay_heartbeat=1.0,seed=3"))
    assert injector.heartbeat_delay(0.2) == 0.2
    assert FaultInjector(FaultPlan()).heartbeat_delay(0.2) == 0.0


# ----------------------------------------------------------------------
# Placement map
# ----------------------------------------------------------------------
def test_placement_spreads_least_loaded_first():
    placement = PlacementMap(replication=1)
    outgoing = placement.assign(["f1", "f2", "f3"], ["a", "b", "c"])
    assert sorted(placement.worker_load().values()) == [1, 1, 1]
    assert sum(len(v) for v in outgoing.values()) == 3
    for fingerprint in ("f1", "f2", "f3"):
        assert len(placement.holders(fingerprint)) == 1


def test_placement_replication_tops_up_without_reshuffling():
    placement = PlacementMap(replication=2)
    placement.assign(["f1"], ["a"])
    assert placement.holders("f1") == ("a",)  # degraded: one worker only
    outgoing = placement.assign(["f1"], ["a", "b"])
    # Existing holder kept; only the top-up frame goes out.
    assert set(placement.holders("f1")) == {"a", "b"}
    assert outgoing == {"b": ["f1"]}
    assert placement.assign(["f1"], ["a", "b"]) == {}  # already satisfied


def test_placement_empty_cluster_is_an_error():
    with pytest.raises(ReproError):
        PlacementMap().assign(["f1"], [])
    with pytest.raises(ReproError):
        PlacementMap(replication=0)


def test_placement_drop_worker_reports_orphans():
    placement = PlacementMap(replication=2)
    placement.assign(["f1", "f2"], ["a", "b"])
    placement.assign(["f3"], ["c"])
    assert placement.drop_worker("a") == []  # b still holds f1, f2
    assert placement.drop_worker("c") == ["f3"]  # last holder gone
    assert placement.holders("f3") == ()


def test_placement_rekey_and_unplace():
    placement = PlacementMap()
    placement.assign(["old"], ["a"])
    assert placement.rekey("old", "new") == ("a",)
    assert placement.holders("new") == ("a",)
    assert not placement.is_placed("old")
    assert placement.unplace(["new"]) == {"a": ["new"]}
    assert len(placement) == 0
    assert placement.worker_load()["a"] == 0


def test_placement_remove_holder_handles_routing_misses():
    placement = PlacementMap(replication=2)
    placement.assign(["f1"], ["a", "b"])
    placement.remove_holder("f1", "a")
    assert placement.holders("f1") == ("b",)
    placement.remove_holder("f1", "zz")  # unknown holder: no-op
    assert placement.holders("f1") == ("b",)


# ----------------------------------------------------------------------
# Coordinator/worker integration over real TCP
# ----------------------------------------------------------------------
def test_coordinator_lifecycle_and_status_without_workers():
    coordinator = ClusterCoordinator()
    assert not coordinator.running
    with coordinator:
        assert coordinator.running
        host, port = coordinator.address
        assert port != 0
        status = coordinator.status()
        assert status["attached"] is True
        assert status["workers"] == 0
        assert not coordinator.can_route([("any", "fingerprint")])
    assert not coordinator.running


def test_wait_for_workers_times_out_cleanly():
    from repro.cluster.coordinator import ClusterUnavailable

    with ClusterCoordinator() as coordinator:
        with pytest.raises(ClusterUnavailable):
            coordinator.wait_for_workers(1, timeout=0.3)


QUERY = "exists z. (E(x, z) & E(z, y))"


def test_cluster_counts_place_route_and_recover_membership():
    graph = random_cluster_graph(4, 5, 0.5, seed=23)
    with ClusterCoordinator(replication=1) as coordinator:
        workers = spawn_workers(coordinator, 2, name_prefix="pair")
        try:
            coordinator.wait_for_workers(2, timeout=30)
            with Engine(processes=2) as engine:
                expected = engine.count(QUERY, graph)
                engine.attach_cluster(coordinator)
                entry = engine.register_structure(
                    "net", graph, pin=True, shard_count=4
                )
                # Registration placed every non-empty shard somewhere.
                placed = sum(entry.placements.values())
                assert placed == len(entry.sharded.non_empty_shards())
                assert engine.count_sharded(QUERY, "net") == expected
                stats = coordinator.stats_snapshot()
                assert stats["jobs_dispatched"] >= 1
                assert stats["jobs_completed"] >= 1
                assert stats["jobs_failed"] == 0
                # Worker-resident contexts are reused across calls.
                assert engine.count_sharded(QUERY, "net") == expected
                assert coordinator.stats_snapshot()["worker_context_hits"] >= 1
                # Unregistering unplaces.
                engine.unregister_structure("net")
                assert coordinator.status()["placements"] == 0
        finally:
            reap(workers)


def test_detached_engine_and_adhoc_counts_never_route():
    graph = random_cluster_graph(3, 4, 0.5, seed=5)
    with ClusterCoordinator() as coordinator:
        workers = spawn_workers(coordinator, 1, name_prefix="solo")
        try:
            coordinator.wait_for_workers(1, timeout=30)
            with Engine(processes=2) as engine:
                engine.attach_cluster(coordinator)
                # Ad-hoc (by-value) sharded counts stay local: nothing
                # was placed, so nothing may route.
                expected = engine.count(QUERY, graph)
                assert (
                    engine.count_sharded(QUERY, graph, shard_count=3)
                    == expected
                )
                assert coordinator.stats_snapshot()["jobs_dispatched"] == 0
                assert engine.detach_cluster() is coordinator
                assert engine.cluster is None
        finally:
            reap(workers)


def test_cluster_degrades_to_local_pool_when_workers_vanish():
    graph = random_cluster_graph(3, 4, 0.5, seed=31)
    with ClusterCoordinator(heartbeat_interval=0.2) as coordinator:
        workers = spawn_workers(coordinator, 1, name_prefix="mortal")
        try:
            coordinator.wait_for_workers(1, timeout=30)
            with Engine(processes=2) as engine:
                expected = engine.count(QUERY, graph)
                engine.attach_cluster(coordinator)
                engine.register_structure("net", graph, pin=True, shard_count=3)
                assert engine.count_sharded(QUERY, "net") == expected
                # Kill the only worker; the count must fall back to the
                # local pool and stay exact.
                reap(workers)
                deadline = time.monotonic() + 10
                while (
                    coordinator.status()["workers"]
                    and time.monotonic() < deadline
                ):
                    time.sleep(0.05)
                assert coordinator.status()["workers"] == 0
                assert engine.count_sharded(QUERY, "net") == expected
        finally:
            reap(workers)


def test_delta_fanout_migrates_placed_shards():
    from repro.structures.delta import StructureDelta

    graph = random_cluster_graph(4, 5, 0.5, seed=17)
    with ClusterCoordinator() as coordinator:
        workers = spawn_workers(coordinator, 2, name_prefix="delta")
        try:
            coordinator.wait_for_workers(2, timeout=30)
            with Engine(processes=2) as engine:
                engine.attach_cluster(coordinator)
                engine.register_structure("net", graph, pin=True, shard_count=4)
                placements_before = coordinator.status()["placements"]
                # Add an edge inside cluster 0 (universe stays fixed).
                delta = StructureDelta(inserts={"E": [(0, 3)]})
                engine.apply_delta("net", delta)
                # Placement count unchanged: re-keyed, not re-placed.
                assert (
                    coordinator.status()["placements"] == placements_before
                )
                fresh = Engine()
                try:
                    expected = fresh.count(
                        QUERY, graph.apply_delta(delta)
                    )
                finally:
                    fresh.close()
                assert engine.count_sharded(QUERY, "net") == expected
                dispatched = coordinator.stats_snapshot()["jobs_dispatched"]
                assert dispatched >= 1  # the post-delta count routed
        finally:
            reap(workers)


# ----------------------------------------------------------------------
# Randomized agreement: local pool vs 1-worker vs 3-worker cluster
# ----------------------------------------------------------------------
AGREEMENT_QUERIES = [
    path_query(2),
    path_query(3, quantify_interior=True),
    star_query(3),
    cycle_query(3),
    example_4_2_query(),
    example_5_21_query(),
    random_conjunctive_query(4, 3, seed=7),
    random_conjunctive_query(3, 4, liberal_count=2, seed=19),
    random_ucq(2, 3, 2, seed=11),
]


def test_generator_queries_agree_across_all_execution_tiers():
    graph = random_cluster_graph(5, 5, 0.5, seed=29)
    with ClusterCoordinator(replication=1) as solo, ClusterCoordinator(
        replication=2
    ) as trio:
        workers = spawn_workers(solo, 1, name_prefix="solo") + spawn_workers(
            trio, 3, name_prefix="trio"
        )
        try:
            solo.wait_for_workers(1, timeout=30)
            trio.wait_for_workers(3, timeout=30)
            for backend in BACKENDS:
                with Engine(processes=2, encoding=backend) as engine:
                    engine.register_structure(
                        "net", graph, pin=True, shard_count=4
                    )
                    expected = [
                        engine.count(query, graph)
                        for query in AGREEMENT_QUERIES
                    ]
                    local = [
                        engine.count_sharded(query, "net", parallel=True)
                        for query in AGREEMENT_QUERIES
                    ]
                    assert local == expected
                    for coordinator in (solo, trio):
                        before = coordinator.stats_snapshot()[
                            "jobs_completed"
                        ]
                        engine.attach_cluster(coordinator)
                        clustered = [
                            engine.count_sharded(query, "net")
                            for query in AGREEMENT_QUERIES
                        ]
                        engine.detach_cluster()
                        assert clustered == expected
                        # The cluster genuinely served shard jobs (the
                        # agreement is not vacuous local fallback).
                        after = coordinator.stats_snapshot()[
                            "jobs_completed"
                        ]
                        assert after > before
        finally:
            reap(workers)


# ----------------------------------------------------------------------
# Serving surface: the cluster block in /healthz, /metrics, Prometheus
# ----------------------------------------------------------------------
def test_service_surfaces_cluster_block_and_prom_families():
    from repro.obs.prom import (
        parse_exposition,
        render_prometheus,
        validate_exposition,
    )
    from repro.serve import CountingService

    async def drive(engine):
        async with CountingService(engine=engine) as service:
            return service.healthz(), service.metrics()

    def gauge(families, name):
        return families[name]["samples"][0][2]

    # Detached: the block is explicit, never missing, and the cluster
    # families render at zero (deterministic family set).
    with Engine(processes=1) as engine:
        health, metrics = asyncio.run(drive(engine))
        assert health["cluster"] == {"attached": False}
        assert metrics["cluster"] == {"attached": False}
        text = render_prometheus(metrics)
        assert validate_exposition(text) == []
        families = parse_exposition(text)
        assert gauge(families, "repro_cluster_attached") == 0
        assert gauge(families, "repro_cluster_workers") == 0

    with ClusterCoordinator() as coordinator:
        workers = spawn_workers(coordinator, 1, name_prefix="svc")
        try:
            coordinator.wait_for_workers(1, timeout=30)
            with Engine(processes=1) as engine:
                engine.attach_cluster(coordinator)
                health, metrics = asyncio.run(drive(engine))
                assert health["cluster"]["attached"] is True
                assert health["cluster"]["workers"] == 1
                assert metrics["cluster"]["capacity_slots"] == 2
                families = parse_exposition(render_prometheus(metrics))
                assert gauge(families, "repro_cluster_attached") == 1
                assert gauge(families, "repro_cluster_workers") == 1
                assert gauge(families, "repro_cluster_capacity_slots") == 2
        finally:
            reap(workers)
