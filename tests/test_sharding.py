"""Sharded execution: partition invariants and exact agreement.

The sharded path must return bit-identical counts to whole-structure
execution on every workload: the combination rules (shard counts sum,
query components multiply, sentence components OR) are exact, not
approximate.  Agreement is checked at shard counts {1, 2, 7} across the
domain scenarios, random queries over clustered data, pp-sentence
components, and a ``10^4``-tuple generated structure.
"""

import pytest

from repro.engine import Engine, compile_plan, execute, execute_sharded
from repro.exceptions import StructureError
from repro.structures.random_gen import random_cluster_graph, random_graph
from repro.structures.sharding import (
    combine_shard_counts,
    data_components,
    shard_structure,
)
from repro.workloads.generators import (
    example_5_21_query,
    path_query,
    random_conjunctive_query,
    random_ucq,
    star_query,
    union_of_paths_query,
)
from repro.workloads.scenarios import all_scenarios

SHARD_COUNTS = (1, 2, 7)


# ----------------------------------------------------------------------
# Partition invariants
# ----------------------------------------------------------------------
@pytest.mark.parametrize("strategy", ["hash", "balanced"])
@pytest.mark.parametrize("shard_count", SHARD_COUNTS)
def test_shards_partition_universe_and_tuples(strategy, shard_count):
    structure = random_cluster_graph(5, 4, 0.5, seed=1)
    sharded = shard_structure(structure, shard_count, strategy=strategy)
    assert sharded.shard_count == shard_count
    universes = [shard.universe for shard in sharded.shards]
    merged = frozenset().union(*universes)
    assert merged == structure.universe
    assert sum(len(u) for u in universes) == len(structure.universe)
    for name, tuples in structure.relations.items():
        shard_tuples = [shard.relation(name) for shard in sharded.shards]
        assert frozenset().union(*shard_tuples) == tuples
        # No tuple crosses shards: every tuple lies inside one universe.
        for shard in sharded.shards:
            for t in shard.relation(name):
                assert all(e in shard.universe for e in t)


def test_sharding_components_stay_whole():
    structure = random_cluster_graph(6, 3, 0.6, seed=2)
    components = data_components(structure)
    sharded = shard_structure(structure, 4)
    for component in components:
        owners = [
            s
            for s, shard in enumerate(sharded.shards)
            if component & shard.universe
        ]
        assert len(owners) == 1


def test_shard_count_beyond_components_gives_empty_shards():
    structure = random_cluster_graph(2, 3, 1.0, seed=0)
    sharded = shard_structure(structure, 7, strategy="balanced")
    assert len(sharded.non_empty_shards()) == 2
    assert sum(shard.is_empty() for shard in sharded.shards) == 5


def test_shard_structure_rejects_bad_arguments():
    structure = random_graph(3, 0.5, seed=0)
    with pytest.raises(StructureError):
        shard_structure(structure, 0)
    with pytest.raises(StructureError):
        shard_structure(structure, 2, strategy="roulette")


def test_combine_shard_counts_rules():
    assert combine_shard_counts([[1, 2, 0], [3, 0, 4]]) == 21
    assert combine_shard_counts([], []) == 1
    assert combine_shard_counts([[5]], [[False, True]]) == 5
    assert combine_shard_counts([[5]], [[False, False]]) == 0


# ----------------------------------------------------------------------
# Whole-vs-sharded agreement
# ----------------------------------------------------------------------
def scenario_cases():
    for scenario in all_scenarios():
        structure = scenario.structure()
        for name, query in scenario.queries.items():
            yield pytest.param(
                query.to_ep(), structure, id=f"{scenario.name}:{name}"
            )


@pytest.mark.parametrize("query,structure", scenario_cases())
@pytest.mark.parametrize("shard_count", SHARD_COUNTS)
def test_scenarios_sharded_agreement(query, structure, shard_count):
    plan = compile_plan(query)
    whole = execute(plan, structure)
    sharded = execute_sharded(
        plan, shard_structure(structure, shard_count), parallel=False
    )
    assert sharded == whole


@pytest.mark.parametrize("seed", range(4))
@pytest.mark.parametrize("shard_count", SHARD_COUNTS)
def test_random_queries_on_clustered_data_agree(seed, shard_count):
    structure = random_cluster_graph(4, 4, 0.45, seed=seed)
    queries = [
        random_conjunctive_query(4, 3, liberal_count=2, seed=seed),
        random_ucq(2, 4, 3, liberal_count=2, seed=seed + 10),
        path_query(2, quantify_interior=True),
        union_of_paths_query([1, 2]),
    ]
    for query in queries:
        plan = compile_plan(query)
        whole = execute(plan, structure)
        sharded = execute_sharded(
            plan, shard_structure(structure, shard_count), parallel=False
        )
        assert sharded == whole, f"query {query}"


@pytest.mark.parametrize("shard_count", SHARD_COUNTS)
def test_sentence_disjuncts_sharded_agreement(shard_count):
    # example_5_21 has a pp-sentence disjunct (a 3-edge path sentence):
    # sharding must OR the satisfiability bits across shards.
    query = example_5_21_query()
    plan = compile_plan(query)
    for seed, p in ((0, 0.05), (1, 0.3), (2, 0.0)):
        structure = random_cluster_graph(3, 4, p, seed=seed)
        whole = execute(plan, structure)
        sharded = execute_sharded(
            plan, shard_structure(structure, shard_count), parallel=False
        )
        assert sharded == whole


@pytest.mark.parametrize("shard_count", SHARD_COUNTS)
def test_pp_sentence_component_sharded_agreement(shard_count):
    # A pp-formula with a disconnected sentence component (exists a,b:
    # E(a,b)) alongside a liberal component: the sentence bit must come
    # from ANY shard while the liberal counts sum.
    from repro.logic.builder import pp_from_atom_specs

    query = pp_from_atom_specs(
        [("E", ("a", "b")), ("E", ("x", "y"))], liberal=["x", "y"]
    )
    plan = compile_plan(query)
    empty_edges = random_cluster_graph(3, 3, 0.0, seed=0)
    some_edges = random_cluster_graph(3, 3, 0.4, seed=1)
    for structure in (empty_edges, some_edges):
        whole = execute(plan, structure)
        sharded = execute_sharded(
            plan, shard_structure(structure, shard_count), parallel=False
        )
        assert sharded == whole


@pytest.mark.parametrize("shard_count", SHARD_COUNTS)
def test_ten_thousand_tuple_generator_agreement(shard_count):
    # The 10^4-tuple serving-scale shape: 60 clusters of 16, p=0.7.
    structure = random_cluster_graph(60, 16, 0.7, seed=7)
    assert structure.total_tuples >= 10_000
    query = star_query(2, quantify_leaves=True)
    plan = compile_plan(query)
    whole = execute(plan, structure)
    sharded = execute_sharded(
        plan, shard_structure(structure, shard_count), parallel=False
    )
    assert sharded == whole


# ----------------------------------------------------------------------
# Degenerate sharded paths
# ----------------------------------------------------------------------
def test_sharded_empty_structure_has_zero_nonempty_shards():
    # Zero non-empty shards: the per-unit rows are built from no values
    # at all, and the combination must still be exact.
    from repro.logic.signatures import RelationSymbol, Signature
    from repro.structures.structure import Structure

    signature = Signature([RelationSymbol("E", 2)])
    empty = Structure.empty(signature)
    sharded = shard_structure(empty, 3)
    assert sharded.non_empty_shards() == ()
    for query in (
        path_query(2, quantify_interior=True),  # liberal components
        union_of_paths_query([1, 2]),  # ep-plus terms
        example_5_21_query(),  # sentence disjuncts
    ):
        plan = compile_plan(query)
        assert execute_sharded(plan, sharded, parallel=False) == execute(
            plan, empty
        )


def test_sharded_all_components_in_one_shard():
    # A connected structure: every element lands in a single shard and
    # the other shards are empty; per-shard sums degenerate to one term.
    structure = random_cluster_graph(1, 6, 0.8, seed=4)
    sharded = shard_structure(structure, 5)
    assert len(sharded.non_empty_shards()) == 1
    for query in (
        path_query(2, quantify_interior=True),
        union_of_paths_query([1, 2]),
        example_5_21_query(),
    ):
        plan = compile_plan(query)
        assert execute_sharded(plan, sharded, parallel=False) == execute(
            plan, structure
        )
        # The parallel path degenerates to the sequential one (a single
        # job never fans out) and must agree too.
        assert execute_sharded(plan, sharded, parallel=True) == execute(
            plan, structure
        )


def test_parallel_sharded_matches_sequential():
    structure = random_cluster_graph(6, 5, 0.4, seed=3)
    queries = [path_query(2, quantify_interior=True), union_of_paths_query([1, 2])]
    for query in queries:
        plan = compile_plan(query)
        sharded = shard_structure(structure, 4)
        sequential = execute_sharded(plan, sharded, parallel=False)
        parallel = execute_sharded(plan, sharded, parallel=True, processes=2)
        assert sequential == parallel == execute(plan, structure)


def test_engine_count_sharded_and_baseline_kinds():
    engine = Engine()
    structure = random_cluster_graph(4, 4, 0.5, seed=9)
    query = "exists z. (E(x, z) & E(z, y))"
    assert engine.count_sharded(query, structure, shard_count=3, parallel=False) == engine.count(
        query, structure
    )
    # Baseline kinds fall back to whole-structure execution -- and do
    # not count as sharded executions.
    assert engine.count_sharded(
        query, structure, shard_count=3, strategy="naive", parallel=False
    ) == engine.count(query, structure, strategy="naive")
    assert engine.stats().sharded_calls == 1


def test_count_sharded_rejects_zero_shard_count():
    from repro.exceptions import ReproError

    engine = Engine()
    structure = random_cluster_graph(2, 3, 0.5, seed=0)
    query = "exists z. (E(x, z) & E(z, y))"
    for bad in (0, -2):
        with pytest.raises(ReproError):
            engine.count_sharded(query, structure, shard_count=bad)
        with pytest.raises(ReproError):
            execute_sharded(compile_plan(query), structure, shard_count=bad)
    # shard_count=None still means "the CPU default", not an error.
    assert engine.count_sharded(query, structure, parallel=False) == engine.count(
        query, structure
    )
