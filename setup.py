"""Setup shim.

The project metadata lives in ``pyproject.toml``; this file exists so
that editable installs work in offline environments where the ``wheel``
package is unavailable (``pip install -e . --no-build-isolation``).
"""

from setuptools import setup

setup()
